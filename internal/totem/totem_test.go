package totem

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"eternal/internal/obs"
	"eternal/internal/simnet"
)

// fastConfig returns timings small enough for quick reformation in tests.
func fastConfig(tr Transport) Config {
	return Config{
		Transport:        tr,
		TokenLossTimeout: 80 * time.Millisecond,
		JoinInterval:     10 * time.Millisecond,
		StableFor:        20 * time.Millisecond,
		Tick:             time.Millisecond,
	}
}

type cluster struct {
	t     *testing.T
	net   *simnet.Network
	procs map[string]*Processor
}

func newCluster(t *testing.T, cfg simnet.Config, addrs ...string) *cluster {
	t.Helper()
	c := &cluster{t: t, net: simnet.New(cfg), procs: make(map[string]*Processor)}
	for _, a := range addrs {
		c.add(a)
	}
	t.Cleanup(func() {
		for _, p := range c.procs {
			p.Stop()
		}
	})
	return c
}

func (c *cluster) add(addr string) *Processor {
	c.t.Helper()
	ep, err := c.net.Join(addr)
	if err != nil {
		c.t.Fatal(err)
	}
	p, err := Start(fastConfig(NewSimnetTransport(ep)))
	if err != nil {
		c.t.Fatal(err)
	}
	c.procs[addr] = p
	return p
}

func (c *cluster) kill(addr string) {
	c.t.Helper()
	p, ok := c.procs[addr]
	if !ok {
		c.t.Fatalf("no processor %s", addr)
	}
	delete(c.procs, addr)
	p.Stop()
}

// awaitView waits until p observes a view with exactly the given members.
func awaitView(t *testing.T, p *Processor, want []string, timeout time.Duration) Membership {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case v, ok := <-p.Views():
			if !ok {
				t.Fatalf("%s: views closed", p.Addr())
			}
			if len(v.Members) == len(want) {
				match := true
				for i := range want {
					if v.Members[i] != want[i] {
						match = false
						break
					}
				}
				if match {
					return v
				}
			}
		case <-deadline:
			t.Fatalf("%s: no view %v within %v", p.Addr(), want, timeout)
		}
	}
}

func collect(t *testing.T, p *Processor, n int, timeout time.Duration) []Delivery {
	t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d, ok := <-p.Deliveries():
			if !ok {
				t.Fatalf("%s: deliveries closed after %d/%d", p.Addr(), len(out), n)
			}
			if d.View != nil {
				continue // membership events interleave with messages
			}
			out = append(out, d)
		case <-deadline:
			t.Fatalf("%s: got %d/%d deliveries within %v", p.Addr(), len(out), n, timeout)
		}
	}
	return out
}

func TestSingleMemberRing(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a")
	p := c.procs["a"]
	awaitView(t, p, []string{"a"}, 2*time.Second)
	if err := p.Multicast([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, p, 1, 2*time.Second)
	if string(ds[0].Payload) != "solo" || ds[0].Sender != "a" {
		t.Fatalf("delivery = %+v", ds[0])
	}
}

func TestThreeMemberTotalOrder(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c")
	want := []string{"a", "b", "c"}
	for _, p := range c.procs {
		awaitView(t, p, want, 3*time.Second)
	}
	// Everyone multicasts concurrently.
	const per = 20
	for _, p := range c.procs {
		p := p
		go func() {
			for i := 0; i < per; i++ {
				if err := p.Multicast([]byte(fmt.Sprintf("%s-%d", p.Addr(), i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	total := per * 3
	var sequences [3][]string
	i := 0
	for _, p := range c.procs {
		ds := collect(t, p, total, 10*time.Second)
		for _, d := range ds {
			sequences[i] = append(sequences[i], string(d.Payload))
		}
		i++
	}
	// Agreed order: every member sees the identical sequence.
	for i := 1; i < 3; i++ {
		if len(sequences[i]) != len(sequences[0]) {
			t.Fatalf("length mismatch: %d vs %d", len(sequences[i]), len(sequences[0]))
		}
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("order diverges at %d: %q vs %q", j, sequences[i][j], sequences[0][j])
			}
		}
	}
}

func TestSeqNonDecreasing(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	for i := 0; i < 10; i++ {
		if err := c.procs["a"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := collect(t, c.procs["b"], 10, 5*time.Second)
	// Sequence numbers are non-decreasing; messages packed into one frame
	// share a sequence number, so equal neighbours are legal.
	for i := 1; i < len(ds); i++ {
		if ds[i].Seq < ds[i-1].Seq {
			t.Fatalf("seq decreased: %d then %d", ds[i-1].Seq, ds[i].Seq)
		}
	}
	// FIFO per sender.
	for i, d := range ds {
		if d.Payload[0] != byte(i) {
			t.Fatalf("sender order violated at %d: %d", i, d.Payload[0])
		}
	}
}

func TestLargeMessageFragmentation(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	big := make([]byte, 50_000) // >> 1518 MTU
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := c.procs["a"].Multicast(big); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, c.procs["b"], 1, 10*time.Second)
	if !bytes.Equal(ds[0].Payload, big) {
		t.Fatalf("payload corrupted: %d bytes", len(ds[0].Payload))
	}
	// Fragmentation must have produced many chunks.
	if st := c.procs["a"].Stats(); st.ChunksSent < 30 {
		t.Errorf("ChunksSent = %d, want many fragments", st.ChunksSent)
	}
}

func TestInterleavedLargeAndSmall(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	big := make([]byte, 10_000)
	if err := c.procs["a"].Multicast(big); err != nil {
		t.Fatal(err)
	}
	if err := c.procs["b"].Multicast([]byte("small")); err != nil {
		t.Fatal(err)
	}
	dsA := collect(t, c.procs["a"], 2, 10*time.Second)
	dsB := collect(t, c.procs["b"], 2, 10*time.Second)
	for i := range dsA {
		if dsA[i].Seq != dsB[i].Seq || dsA[i].Sender != dsB[i].Sender {
			t.Fatalf("divergent deliveries: %+v vs %+v", dsA[i], dsB[i])
		}
	}
}

func TestMemberFailureReformsRing(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c"}, 3*time.Second)
	}
	c.kill("c")
	awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	awaitView(t, c.procs["b"], []string{"a", "b"}, 5*time.Second)
	// The survivors keep multicasting.
	if err := c.procs["a"].Multicast([]byte("after-failure")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, c.procs["b"], 1, 5*time.Second)
	if string(ds[0].Payload) != "after-failure" {
		t.Fatalf("payload = %q", ds[0].Payload)
	}
}

func TestSurvivorsContinueLineage(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c"}, 3*time.Second)
	}
	c.kill("c")
	v := awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	if v.Reset {
		t.Fatal("survivor must continue the lineage, not reset")
	}
}

func TestNewcomerJoinsWithReset(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	// Traffic before the join.
	for i := 0; i < 5; i++ {
		if err := c.procs["a"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, c.procs["b"], 5, 5*time.Second)

	nc := c.add("c")
	v := awaitView(t, nc, []string{"a", "b", "c"}, 5*time.Second)
	if !v.Reset {
		t.Fatal("newcomer must be delivered a Reset view")
	}
	vA := awaitView(t, c.procs["a"], []string{"a", "b", "c"}, 5*time.Second)
	if vA.Reset {
		t.Fatal("existing member must not reset on a join")
	}
	// Post-join message reaches everyone including the newcomer.
	if err := c.procs["b"].Multicast([]byte("welcome")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.procs["a"], 5, 5*time.Second) // drain pre-join messages
	dsA := collect(t, c.procs["a"], 1, 5*time.Second)
	dsC := collect(t, nc, 1, 5*time.Second)
	if string(dsA[0].Payload) != "welcome" || string(dsC[0].Payload) != "welcome" {
		t.Fatalf("a=%q c=%q", dsA[0].Payload, dsC[0].Payload)
	}
	if dsA[0].Seq != dsC[0].Seq {
		t.Fatalf("seq mismatch: %d vs %d", dsA[0].Seq, dsC[0].Seq)
	}
}

func TestLossyNetworkStillDeliversInOrder(t *testing.T) {
	c := newCluster(t, simnet.Config{LossRate: 0.05, Seed: 7}, "a", "b", "c")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c"}, 10*time.Second)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := c.procs["a"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dsB := collect(t, c.procs["b"], n, 20*time.Second)
	dsC := collect(t, c.procs["c"], n, 20*time.Second)
	for i := 0; i < n; i++ {
		if dsB[i].Payload[0] != byte(i) || dsC[i].Payload[0] != byte(i) {
			t.Fatalf("order violated at %d under loss", i)
		}
	}
	if st := c.procs["a"].Stats(); st.Retransmits == 0 {
		t.Log("note: no retransmissions observed (loss may not have hit data frames)")
	}
}

func TestPartitionFormsTwoRings(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c", "d")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c", "d"}, 5*time.Second)
	}
	c.net.Partition([]string{"a", "b"}, []string{"c", "d"})
	awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	awaitView(t, c.procs["c"], []string{"c", "d"}, 5*time.Second)
	// Each side keeps working independently.
	if err := c.procs["a"].Multicast([]byte("sideA")); err != nil {
		t.Fatal(err)
	}
	if err := c.procs["c"].Multicast([]byte("sideC")); err != nil {
		t.Fatal(err)
	}
	dsB := collect(t, c.procs["b"], 1, 5*time.Second)
	dsD := collect(t, c.procs["d"], 1, 5*time.Second)
	if string(dsB[0].Payload) != "sideA" || string(dsD[0].Payload) != "sideC" {
		t.Fatalf("b=%q d=%q", dsB[0].Payload, dsD[0].Payload)
	}
}

func TestPartitionHealRemerges(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c", "d")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c", "d"}, 5*time.Second)
	}
	c.net.Partition([]string{"a", "b"}, []string{"c", "d"})
	awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	awaitView(t, c.procs["c"], []string{"c", "d"}, 5*time.Second)
	// Generate traffic on both sides so the lineages diverge.
	if err := c.procs["a"].Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.procs["c"].Multicast([]byte("y")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.procs["b"], 1, 5*time.Second)
	collect(t, c.procs["d"], 1, 5*time.Second)

	c.net.Heal()
	want := []string{"a", "b", "c", "d"}
	for _, addr := range want {
		awaitView(t, c.procs[addr], want, 15*time.Second)
	}
	// After the merge everyone agrees on new messages.
	if err := c.procs["d"].Multicast([]byte("merged")); err != nil {
		t.Fatal(err)
	}
	for _, addr := range want {
		// Drain any leftover pre-merge deliveries, then find "merged".
		deadline := time.After(10 * time.Second)
		for {
			select {
			case d := <-c.procs[addr].Deliveries():
				if d.View == nil && string(d.Payload) == "merged" {
					goto next
				}
			case <-deadline:
				t.Fatalf("%s: merged message never delivered", addr)
			}
		}
	next:
	}
}

func TestMulticastAfterStopErrors(t *testing.T) {
	net := simnet.New(simnet.Config{})
	ep, _ := net.Join("a")
	p, err := Start(fastConfig(NewSimnetTransport(ep)))
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	// After Stop, Multicast must fail rather than hang (the submit queue
	// may accept a few buffered messages first).
	for i := 0; i < 300; i++ {
		if err := p.Multicast([]byte("x")); err != nil {
			return
		}
	}
	t.Fatal("Multicast never failed after Stop")
}

func TestStopIdempotent(t *testing.T) {
	net := simnet.New(simnet.Config{})
	ep, _ := net.Join("a")
	p, err := Start(fastConfig(NewSimnetTransport(ep)))
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop()
}

func TestConfigValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("nil transport must be rejected")
	}
	net := simnet.New(simnet.Config{MTU: 64})
	ep, _ := net.Join("tiny")
	if _, err := Start(fastConfig(NewSimnetTransport(ep))); err == nil {
		t.Fatal("tiny MTU must be rejected")
	}
}

func TestEmptyPayload(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	if err := c.procs["a"].Multicast(nil); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, c.procs["b"], 1, 5*time.Second)
	if len(ds[0].Payload) != 0 {
		t.Fatalf("payload = % x", ds[0].Payload)
	}
}

func TestStatsProgress(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	if err := c.procs["a"].Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.procs["b"], 1, 5*time.Second)
	time.Sleep(50 * time.Millisecond)
	st := c.procs["a"].Stats()
	if st.Multicasts != 1 || st.ChunksSent != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TokenRotations == 0 {
		t.Error("token never completed a rotation")
	}
	if st.ViewChanges == 0 {
		t.Error("no view changes counted")
	}
}

// TestViewDeliveredInStreamOrder verifies that the membership event
// appears in the delivery stream after all old-ring messages and before
// all new-ring messages, at every member.
func TestViewDeliveredInStreamOrder(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b", "c")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c"}, 3*time.Second)
	}
	for i := 0; i < 10; i++ {
		if err := c.procs["a"].Multicast([]byte{1, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, c.procs["a"], 10, 5*time.Second)
	collect(t, c.procs["b"], 10, 5*time.Second)
	c.kill("c")
	// Wait for reformation, then send post-view traffic.
	awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	for i := 0; i < 10; i++ {
		if err := c.procs["b"].Multicast([]byte{2, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// In b's raw stream, the 2-member view must precede every phase-2
	// message (phase-1 messages were consumed above).
	deadline := time.After(10 * time.Second)
	seenView := false
	seen2 := 0
	for seen2 < 10 {
		select {
		case d := <-c.procs["b"].Deliveries():
			switch {
			case d.View != nil:
				if len(d.View.Members) == 2 {
					seenView = true
				}
			case len(d.Payload) == 2 && d.Payload[0] == 2:
				if !seenView {
					t.Fatal("phase-2 message delivered before the view change")
				}
				seen2++
			}
		case <-deadline:
			t.Fatalf("only %d phase-2 messages", seen2)
		}
	}
}

// TestFlowControlMaxPerToken verifies that a burst larger than one token
// visit's allowance is spread across visits rather than sent at once.
func TestFlowControlMaxPerToken(t *testing.T) {
	net := simnet.New(simnet.Config{})
	epA, _ := net.Join("a")
	epB, _ := net.Join("b")
	// Pin classic token-visit sending: the leader fast path would drain
	// the burst without consuming token allowances.
	cfgA := fastConfig(NewSimnetTransport(epA))
	cfgA.MaxPerToken = 4
	cfgA.FastPath = FastPathOff
	cfgB := fastConfig(NewSimnetTransport(epB))
	cfgB.MaxPerToken = 4
	cfgB.FastPath = FastPathOff
	pa, err := Start(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Start(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pa.Stop(); pb.Stop() })
	awaitView(t, pa, []string{"a", "b"}, 3*time.Second)
	awaitView(t, pb, []string{"a", "b"}, 3*time.Second)

	rotationsBefore := pa.Stats().TokenRotations
	for i := 0; i < 20; i++ {
		if err := pa.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := collect(t, pb, 20, 10*time.Second)
	for i, d := range ds {
		if d.Payload[0] != byte(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
	// 20 chunks at 4 per visit needs at least 5 visits (≥ ~4 rotations
	// beyond wherever we started).
	rotations := pa.Stats().TokenRotations - rotationsBefore
	if rotations < 4 {
		t.Fatalf("rotations during burst = %d, expected several (flow control)", rotations)
	}
}

// TestMulticastLargerThanRetentionWindow pushes enough traffic through a
// small ring that the garbage collector must run, then verifies a fresh
// message still delivers (GC never outruns the members' aru).
func TestGarbageCollectionUnderSustainedTraffic(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	const n = 300
	go func() {
		for i := 0; i < n; i++ {
			c.procs["a"].Multicast([]byte{byte(i)})
		}
	}()
	collect(t, c.procs["b"], n, 30*time.Second)
	// Retention must have been garbage-collected along the way; the store
	// is bounded. One more message proves the ring is still healthy.
	if err := c.procs["b"].Multicast([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, c.procs["a"], n+1, 30*time.Second)
	if string(ds[n].Payload) != "tail" {
		t.Fatalf("tail = %q", ds[n].Payload)
	}
}

// TestTracedMulticastSpansAndRotationProfiler wires a span recorder and
// metrics registry into one member, sends traced request and reply
// multicasts, and verifies the totem-side phase marks (enqueued,
// transmitted, mirrored for replies) plus the token-rotation profiler's
// samples and histograms.
func TestTracedMulticastSpansAndRotationProfiler(t *testing.T) {
	net := simnet.New(simnet.Config{})
	spans := obs.NewSpanRecorder("a", 64)
	reg := obs.NewRegistry()
	var procs []*Processor
	for _, addr := range []string{"a", "b"} {
		ep, err := net.Join(addr)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(NewSimnetTransport(ep))
		// This test profiles the classic token-visit drain; the 2-member
		// fast path would sequence the chunks outside any token hold.
		cfg.FastPath = FastPathOff
		if addr == "a" {
			cfg.Spans = spans
			cfg.Metrics = reg
		}
		p, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		procs = append(procs, p)
	}
	pa, pb := procs[0], procs[1]
	awaitView(t, pa, []string{"a", "b"}, 3*time.Second)
	awaitView(t, pb, []string{"a", "b"}, 3*time.Second)

	if err := pa.MulticastTraced([]byte("req"), 42, false); err != nil {
		t.Fatal(err)
	}
	// Reply phases only stamp an already-open span (late duplicate
	// replies must not fabricate fragments), so open trace 43 the way an
	// executing node would — at request ordering.
	spans.Annotate(43, "g")
	if err := pa.MulticastTraced([]byte("rep"), 43, true); err != nil {
		t.Fatal(err)
	}
	if err := pa.Multicast([]byte("untraced")); err != nil {
		t.Fatal(err)
	}
	collect(t, pb, 3, 5*time.Second)
	collect(t, pa, 3, 5*time.Second)

	spans.FlushIdle(0)
	got := make(map[uint64]obs.Span)
	for _, sp := range spans.Since(0, 0) {
		got[sp.Trace] = sp
	}
	req, ok := got[42]
	if !ok {
		t.Fatalf("no span for trace 42: %+v", got)
	}
	if req.Phases[obs.SpanEnqueued] == 0 || req.Phases[obs.SpanTransmitted] == 0 {
		t.Fatalf("request span missing totem phases: %+v", req)
	}
	if req.Phases[obs.SpanTransmitted] < req.Phases[obs.SpanEnqueued] {
		t.Fatalf("transmit before enqueue: %+v", req)
	}
	rep, ok := got[43]
	if !ok {
		t.Fatalf("no span for trace 43: %+v", got)
	}
	if rep.Phases[obs.SpanReplyEnqueued] == 0 || rep.Phases[obs.SpanReplyTransmitted] == 0 {
		t.Fatalf("reply span missing mirrored phases: %+v", rep)
	}
	if rep.Phases[obs.SpanEnqueued] != 0 {
		t.Fatalf("reply marked with request phases: %+v", rep)
	}
	if len(got) != 2 {
		t.Fatalf("untraced multicast opened a span: %+v", got)
	}

	rots := pa.Rotations(0)
	if len(rots) == 0 {
		t.Fatal("no rotation samples")
	}
	var sawSend bool
	for _, r := range rots {
		if r.HoldUs < 0 || r.IntervalUs < 0 {
			t.Fatalf("negative durations in sample %+v", r)
		}
		if r.ChunksSent > 0 {
			sawSend = true
		}
	}
	if !sawSend {
		t.Fatalf("no rotation recorded the pending-queue drain: %+v", rots)
	}
	for _, name := range []string{"eternal_totem_token_hold_seconds", "eternal_totem_token_interval_seconds"} {
		h := reg.FindHistogram(name)
		if h == nil || h.Count() == 0 {
			t.Fatalf("%s not populated", name)
		}
	}
}
