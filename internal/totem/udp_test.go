package totem

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback UDP ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

func TestUDPTransportRing(t *testing.T) {
	ports := freePorts(t, 3)
	names := []string{"u1", "u2", "u3"}
	addr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", ports[i]) }

	procs := make([]*Processor, 3)
	for i, name := range names {
		peers := make(map[string]string)
		for j, peer := range names {
			if j != i {
				peers[peer] = addr(j)
			}
		}
		tr, err := NewUDPTransport(name, addr(i), peers)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Start(fastConfig(tr))
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Stop()
		}
	})

	for _, p := range procs {
		awaitView(t, p, names, 10*time.Second)
	}
	// Ordered delivery across real UDP sockets.
	for i := 0; i < 10; i++ {
		if err := procs[i%3].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds1 := collect(t, procs[0], 10, 10*time.Second)
	ds2 := collect(t, procs[1], 10, 10*time.Second)
	for i := range ds1 {
		if ds1[i].Seq != ds2[i].Seq || ds1[i].Payload[0] != ds2[i].Payload[0] {
			t.Fatalf("divergent delivery at %d", i)
		}
	}
}

func TestUDPTransportLargeMessage(t *testing.T) {
	ports := freePorts(t, 2)
	addr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", ports[i]) }
	t1, err := NewUDPTransport("a", addr(0), map[string]string{"b": addr(1)})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewUDPTransport("b", addr(1), map[string]string{"a": addr(0)})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := Start(fastConfig(t1))
	p2, _ := Start(fastConfig(t2))
	t.Cleanup(func() { p1.Stop(); p2.Stop() })
	awaitView(t, p1, []string{"a", "b"}, 10*time.Second)
	awaitView(t, p2, []string{"a", "b"}, 10*time.Second)

	big := make([]byte, 20_000) // fragments across many datagrams
	for i := range big {
		big[i] = byte(i * 3)
	}
	if err := p1.Multicast(big); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, p2, 1, 15*time.Second)
	if len(ds[0].Payload) != len(big) {
		t.Fatalf("got %d bytes", len(ds[0].Payload))
	}
	for i := range big {
		if ds[0].Payload[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestUDPTransportValidation(t *testing.T) {
	if _, err := NewUDPTransport("", "127.0.0.1:0", nil); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if _, err := NewUDPTransport("x", "not-an-addr", nil); err == nil {
		t.Fatal("bad listen address must be rejected")
	}
	if _, err := NewUDPTransport("x", "127.0.0.1:0", map[string]string{"y": "::bad::"}); err == nil {
		t.Fatal("bad peer address must be rejected")
	}
}

func TestUDPTransportSelfLoopback(t *testing.T) {
	tr, err := NewUDPTransport("solo", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Broadcast([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-tr.Recv():
		if pkt.From != "solo" || string(pkt.Payload) != "ping" {
			t.Fatalf("pkt = %+v", pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no loopback delivery")
	}
	// Send to self also loops back.
	if err := tr.Send("solo", []byte("me")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-tr.Recv():
		if string(pkt.Payload) != "me" {
			t.Fatalf("pkt = %+v", pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no self-send delivery")
	}
	// Unknown peer: silently dropped.
	if err := tr.Send("ghost", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestUDPTransportAddPeer(t *testing.T) {
	ports := freePorts(t, 2)
	a, err := NewUDPTransport("a", fmt.Sprintf("127.0.0.1:%d", ports[0]), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPTransport("b", fmt.Sprintf("127.0.0.1:%d", ports[1]), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", fmt.Sprintf("127.0.0.1:%d", ports[1])); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("late-peer")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if pkt.From != "a" || string(pkt.Payload) != "late-peer" {
			t.Fatalf("pkt = %+v", pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery after AddPeer")
	}
}
