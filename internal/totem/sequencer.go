package totem

import (
	"sync"
	"sync/atomic"

	"eternal/internal/cdr"
)

// Sequencer is a deliberately minimal fixed-sequencer total-order
// multicast: senders unicast to a designated leader, which stamps a
// global sequence number and broadcasts. It exists as the ablation
// baseline for the token-ring design choice (DESIGN.md §5): no membership
// protocol, no retransmission, no failure handling — compare its cost and
// properties against the Totem ring, not its robustness.
type Sequencer struct {
	tr     Transport
	leader string

	deliveries *pump[Delivery]
	stopOnce   sync.Once
	done       chan struct{}

	// Leader-side counter.
	nextSeq atomic.Uint64
	// Receiver-side reordering.
	mu      sync.Mutex
	nextDel uint64
	holdBck map[uint64]Delivery
}

// Sequencer wire types.
const (
	sqSubmit  byte = 101
	sqOrdered byte = 102
)

// NewSequencer creates a member; exactly one member (the smallest address
// by convention, chosen by the caller) is the leader.
func NewSequencer(tr Transport, leader string) *Sequencer {
	s := &Sequencer{
		tr:         tr,
		leader:     leader,
		deliveries: newPump[Delivery](),
		done:       make(chan struct{}),
		nextDel:    1,
		holdBck:    make(map[uint64]Delivery),
	}
	go s.run()
	return s
}

// Deliveries returns the ordered delivery stream.
func (s *Sequencer) Deliveries() <-chan Delivery { return s.deliveries.Out() }

// Multicast submits one message for total-order delivery.
func (s *Sequencer) Multicast(payload []byte) error {
	if s.tr.Addr() == s.leader {
		// Local submit: stamp directly.
		s.order(s.tr.Addr(), payload)
		return nil
	}
	e := cdr.AcquireEncoder(cdr.BigEndian)
	defer cdr.ReleaseEncoder(e)
	e.WriteOctet(sqSubmit)
	e.WriteString(s.tr.Addr())
	e.WriteOctetSeq(payload)
	return s.tr.Send(s.leader, e.Bytes())
}

// Stop shuts the member down.
func (s *Sequencer) Stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.tr.Close()
		s.deliveries.Close()
	})
}

func (s *Sequencer) order(sender string, payload []byte) {
	seq := s.nextSeq.Add(1)
	e := cdr.AcquireEncoder(cdr.BigEndian)
	defer cdr.ReleaseEncoder(e)
	e.WriteOctet(sqOrdered)
	e.WriteULongLong(seq)
	e.WriteString(sender)
	e.WriteOctetSeq(payload)
	_ = s.tr.Broadcast(e.Bytes())
}

func (s *Sequencer) run() {
	for {
		select {
		case <-s.done:
			return
		case pkt, ok := <-s.tr.Recv():
			if !ok {
				return
			}
			s.handle(pkt)
		}
	}
}

func (s *Sequencer) handle(pkt Packet) {
	d := cdr.NewDecoder(pkt.Payload, cdr.BigEndian)
	t, err := d.ReadOctet()
	if err != nil {
		return
	}
	switch t {
	case sqSubmit:
		if s.tr.Addr() != s.leader {
			return
		}
		sender, err := d.ReadString()
		if err != nil {
			return
		}
		// View, not copy: order re-encodes the payload synchronously.
		payload, err := d.ReadOctetSeqView()
		if err != nil {
			return
		}
		s.order(sender, payload)
	case sqOrdered:
		seq, err := d.ReadULongLong()
		if err != nil {
			return
		}
		sender, err := d.ReadString()
		if err != nil {
			return
		}
		payload, err := d.ReadOctetSeq()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.holdBck[seq] = Delivery{Seq: seq, Sender: sender, Payload: payload}
		for {
			del, ok := s.holdBck[s.nextDel]
			if !ok {
				break
			}
			delete(s.holdBck, s.nextDel)
			s.nextDel++
			s.deliveries.In(del)
		}
		s.mu.Unlock()
	}
}
