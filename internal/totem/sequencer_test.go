package totem

import (
	"testing"
	"time"

	"eternal/internal/simnet"
)

func newSeqGroup(t *testing.T, addrs ...string) (map[string]*Sequencer, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	leader := addrs[0]
	out := make(map[string]*Sequencer, len(addrs))
	for _, a := range addrs {
		ep, err := net.Join(a)
		if err != nil {
			t.Fatal(err)
		}
		out[a] = NewSequencer(NewSimnetTransport(ep), leader)
	}
	t.Cleanup(func() {
		for _, s := range out {
			s.Stop()
		}
	})
	return out, net
}

func collectSeq(t *testing.T, s *Sequencer, n int, timeout time.Duration) []Delivery {
	t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d := <-s.Deliveries():
			out = append(out, d)
		case <-deadline:
			t.Fatalf("got %d/%d", len(out), n)
		}
	}
	return out
}

func TestSequencerTotalOrder(t *testing.T) {
	grp, _ := newSeqGroup(t, "a", "b", "c")
	for i := 0; i < 10; i++ {
		from := []string{"a", "b", "c"}[i%3]
		if err := grp[from].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	da := collectSeq(t, grp["a"], 10, 5*time.Second)
	db := collectSeq(t, grp["b"], 10, 5*time.Second)
	for i := range da {
		if da[i].Seq != db[i].Seq || da[i].Sender != db[i].Sender {
			t.Fatalf("divergence at %d: %+v vs %+v", i, da[i], db[i])
		}
	}
	// Gap-free sequence.
	for i, d := range da {
		if d.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, d.Seq)
		}
	}
}

func TestSequencerLeaderLocalSubmit(t *testing.T) {
	grp, _ := newSeqGroup(t, "a", "b")
	if err := grp["a"].Multicast([]byte("from-leader")); err != nil {
		t.Fatal(err)
	}
	d := collectSeq(t, grp["b"], 1, 5*time.Second)
	if string(d[0].Payload) != "from-leader" || d[0].Sender != "a" {
		t.Fatalf("delivery = %+v", d[0])
	}
}

func TestSequencerSelfDelivery(t *testing.T) {
	grp, _ := newSeqGroup(t, "a", "b")
	if err := grp["b"].Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	d := collectSeq(t, grp["b"], 1, 5*time.Second)
	if d[0].Sender != "b" {
		t.Fatalf("delivery = %+v", d[0])
	}
}
