package totem

import (
	"bytes"
	"fmt"
	"testing"

	"eternal/internal/cdr"
)

func encodeMsg(m wireMsg) []byte {
	e := cdr.NewEncoder(cdr.BigEndian)
	m.encodeTo(e)
	return bytes.Clone(e.Bytes())
}

func TestPackedFrameRoundTrip(t *testing.T) {
	in := &dataMsg{
		Ring: ringIdentity{Epoch: 7, Rep: "node-a"},
		Seq:  42,
		Chunks: []chunk{
			{Sender: "node-a", MsgID: 1, FragIdx: 0, FragTotal: 1, Payload: []byte("alpha")},
			{Sender: "node-b", MsgID: 9, FragIdx: 2, FragTotal: 3, Payload: []byte{}},
			{Sender: "node-a", MsgID: 2, FragIdx: 0, FragTotal: 1, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
	buf := encodeMsg(in)
	if buf[0] != ptPacked {
		t.Fatalf("multi-chunk frame encoded as type %d, want ptPacked", buf[0])
	}
	got, err := decodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := got.(*dataMsg)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if out.Ring != in.Ring || out.Seq != in.Seq || len(out.Chunks) != len(in.Chunks) {
		t.Fatalf("frame mismatch: %+v", out)
	}
	for i := range in.Chunks {
		a, b := &in.Chunks[i], &out.Chunks[i]
		if a.Sender != b.Sender || a.MsgID != b.MsgID || a.FragIdx != b.FragIdx ||
			a.FragTotal != b.FragTotal || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("chunk %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

// TestSingleChunkKeepsLegacyLayout pins the interop property: a frame
// carrying one chunk uses the pre-packing ptData wire form, so senders
// with packing enabled interoperate with older/packing-off receivers.
func TestSingleChunkKeepsLegacyLayout(t *testing.T) {
	in := &dataMsg{
		Ring:   ringIdentity{Epoch: 3, Rep: "x"},
		Seq:    5,
		Chunks: []chunk{{Sender: "x", MsgID: 4, FragIdx: 0, FragTotal: 1, Payload: []byte("hi")}},
	}
	buf := encodeMsg(in)
	if buf[0] != ptData {
		t.Fatalf("single-chunk frame encoded as type %d, want ptData", buf[0])
	}
	got, err := decodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*dataMsg)
	if len(out.Chunks) != 1 || out.Chunks[0].MsgID != 4 || string(out.Chunks[0].Payload) != "hi" {
		t.Fatalf("decoded %+v", out)
	}
}

// TestWireCostBoundsEncodedSize verifies the packer's conservative size
// arithmetic: for any frame, the wireCost estimate must be >= the actual
// encoded size, or packed frames could exceed the transport MTU.
func TestWireCostBoundsEncodedSize(t *testing.T) {
	payloads := [][]byte{
		{}, []byte("x"), bytes.Repeat([]byte{1}, 100), bytes.Repeat([]byte{2}, 1300),
	}
	for _, rep := range []string{"a", "a-very-long-representative-name-padding-to-sixty-four-bytes!!!"} {
		frame := &dataMsg{Ring: ringIdentity{Epoch: 1, Rep: rep}, Seq: 1}
		estimate := packedFrameOverhead + len(rep)
		for i, pl := range payloads {
			c := chunk{Sender: rep, MsgID: uint64(i), FragIdx: 0, FragTotal: 1, Payload: pl}
			frame.Chunks = append(frame.Chunks, c)
			estimate += c.wireCost()
			if len(frame.Chunks) < 2 {
				continue // single-chunk layout is bounded trivially
			}
			if got := len(encodeMsg(frame)); got > estimate {
				t.Fatalf("rep=%q chunks=%d: encoded %d bytes > estimate %d",
					rep, len(frame.Chunks), got, estimate)
			}
		}
	}
}

func TestPackedDecodeRejectsBogusCount(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(ptPacked)
	encodeRing(e, ringIdentity{Epoch: 1, Rep: "a"})
	e.WriteULongLong(9)
	e.WriteULong(1 << 30) // claims a billion chunks in an empty stream
	if _, err := decodePacket(bytes.Clone(e.Bytes())); err == nil {
		t.Fatal("decodePacket accepted a hostile chunk count")
	}
}

func TestAllMessageTypesRoundTrip(t *testing.T) {
	msgs := []wireMsg{
		&tokenMsg{Ring: ringIdentity{1, "a"}, Round: 2, Seq: 3, Aru: 1, AruSetter: "b", GCSeq: 1, IdleHops: 4, Rtr: []uint64{7, 9}},
		&joinMsg{Sender: "a", Alive: []string{"a", "b"}, PrevRing: ringIdentity{1, "a"}, HighSeq: 10, MaxEpoch: 2},
		&formMsg{Ring: ringIdentity{2, "a"}, Members: []string{"a", "b"}, Lineage: ringIdentity{1, "a"}, StartSeq: 10},
		&announceMsg{Ring: ringIdentity{2, "a"}},
	}
	for _, in := range msgs {
		got, err := decodePacket(encodeMsg(in))
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", in) {
			t.Fatalf("%T round trip: %+v vs %+v", in, got, in)
		}
	}
}
