package totem

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"eternal/internal/simnet"
)

// addWithPacking joins a processor with an explicit packing flag.
func (c *cluster) addWithPacking(addr string, packing PackingFlag) *Processor {
	c.t.Helper()
	ep, err := c.net.Join(addr)
	if err != nil {
		c.t.Fatal(err)
	}
	cfg := fastConfig(NewSimnetTransport(ep))
	cfg.Packing = packing
	p, err := Start(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	c.procs[addr] = p
	return p
}

// TestPackedFrameMixesTwoMessages pins the core packing behaviour
// deterministically: both messages are enqueued before the ring forms, so
// the first token visit sees all three chunks pending. Message A is sized
// to fragment into one full chunk plus a large tail; the tail cannot share
// a frame with the full chunk but can with B, so the second frame carries
// fragments of two different application messages under one sequence
// number.
func TestPackedFrameMixesTwoMessages(t *testing.T) {
	c := newCluster(t, simnet.Config{}, "a", "b")
	chunkSize := simnet.EthernetMTU - fragMargin - len("a")
	msgA := bytes.Repeat([]byte{0x5A}, 2*chunkSize-20) // frags: [chunkSize, chunkSize-20]
	msgB := []byte("tail")
	if err := c.procs["a"].Multicast(msgA); err != nil {
		t.Fatal(err)
	}
	if err := c.procs["a"].Multicast(msgB); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	for _, p := range []*Processor{c.procs["a"], c.procs["b"]} {
		ds := collect(t, p, 2, 5*time.Second)
		if !bytes.Equal(ds[0].Payload, msgA) || !bytes.Equal(ds[1].Payload, msgB) {
			t.Fatalf("%s: wrong payloads (lens %d, %d)", p.Addr(), len(ds[0].Payload), len(ds[1].Payload))
		}
		// A completes at the packed frame carrying its tail fragment and B,
		// so both deliveries share that frame's sequence number.
		if ds[0].Seq != ds[1].Seq {
			t.Fatalf("%s: expected shared seq for packed frame, got %d and %d",
				p.Addr(), ds[0].Seq, ds[1].Seq)
		}
	}
	st := c.procs["a"].Stats()
	if st.ChunksSent != 3 || st.DataFrames != 2 || st.PackedChunks != 2 {
		t.Fatalf("stats = chunks %d, frames %d, packed %d; want 3, 2, 2",
			st.ChunksSent, st.DataFrames, st.PackedChunks)
	}
}

// TestPackedFrameRetransmissionUnderLoss drives a packed workload over a
// lossy medium: dropped packed frames must be recovered whole via the
// token's retransmission list, preserving agreed order on every member.
// The token-loss timeout is raised well above the recovery time so the
// ring never falls apart into single-member rings (whose view-synchrony
// semantics legitimately drop messages); every loss must instead be
// repaired by retransmission within the one lineage.
func TestPackedFrameRetransmissionUnderLoss(t *testing.T) {
	c := &cluster{t: t, net: simnet.New(simnet.Config{LossRate: 0.15, Seed: 7}), procs: make(map[string]*Processor)}
	for _, addr := range []string{"a", "b"} {
		ep, err := c.net.Join(addr)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(NewSimnetTransport(ep))
		cfg.TokenLossTimeout = 2 * time.Second
		cfg.TokenResend = 10 * time.Millisecond
		p, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.procs[addr] = p
	}
	t.Cleanup(func() {
		for _, p := range c.procs {
			p.Stop()
		}
	})
	const n = 100
	// Enqueue before the ring forms so token visits drain dense batches and
	// nearly every data frame is packed. ~600-byte payloads pack two chunks
	// per frame, spreading the burst over ~50 data frames so that at 15%
	// loss at least one frame is dropped with near certainty.
	want := make([][]byte, n)
	pad := bytes.Repeat([]byte{'.'}, 600)
	for i := 0; i < n; i++ {
		want[i] = append([]byte(fmt.Sprintf("m-%03d", i)), pad...)
		if err := c.procs["a"].Multicast(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 10*time.Second)
	}
	dsA := collect(t, c.procs["a"], n, 30*time.Second)
	dsB := collect(t, c.procs["b"], n, 30*time.Second)
	for i := 0; i < n; i++ {
		if !bytes.Equal(dsA[i].Payload, want[i]) || !bytes.Equal(dsB[i].Payload, want[i]) {
			t.Fatalf("order violated at %d", i)
		}
	}
	stA, stB := c.procs["a"].Stats(), c.procs["b"].Stats()
	if stA.PackedChunks == 0 {
		t.Fatal("expected packed frames in a dense burst")
	}
	if stA.Retransmits+stB.Retransmits == 0 {
		t.Fatal("expected retransmissions at 15% loss")
	}
}

// TestPackedFramesAcrossReformation covers packing around membership
// changes: packed delivery before a member dies, packed delivery among the
// survivors after the reformation, and packed delivery to a fresh joiner
// whose first view carries Reset=true.
func TestPackedFramesAcrossReformation(t *testing.T) {
	burst := func(p *Processor, tag string, n int) {
		for i := 0; i < n; i++ {
			if err := p.Multicast([]byte(fmt.Sprintf("%s-%03d", tag, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(ds []Delivery, tag string) {
		t.Helper()
		for i, d := range ds {
			if want := fmt.Sprintf("%s-%03d", tag, i); string(d.Payload) != want {
				t.Fatalf("at %d: got %q want %q", i, d.Payload, want)
			}
		}
	}

	c := newCluster(t, simnet.Config{}, "a", "b", "c")
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b", "c"}, 5*time.Second)
	}
	const n = 40
	burst(c.procs["a"], "one", n)
	for _, addr := range []string{"a", "b", "c"} {
		check(collect(t, c.procs[addr], n, 10*time.Second), "one")
	}

	c.kill("c")
	awaitView(t, c.procs["a"], []string{"a", "b"}, 5*time.Second)
	awaitView(t, c.procs["b"], []string{"a", "b"}, 5*time.Second)
	burst(c.procs["a"], "two", n)
	check(collect(t, c.procs["a"], n, 10*time.Second), "two")
	check(collect(t, c.procs["b"], n, 10*time.Second), "two")

	d := c.add("d")
	vd := awaitView(t, d, []string{"a", "b", "d"}, 5*time.Second)
	if !vd.Reset {
		t.Fatalf("fresh joiner's view not Reset: %+v", vd)
	}
	awaitView(t, c.procs["a"], []string{"a", "b", "d"}, 5*time.Second)
	burst(c.procs["a"], "three", n)
	check(collect(t, d, n, 10*time.Second), "three")
	check(collect(t, c.procs["a"], n, 10*time.Second), "three")

	if st := c.procs["a"].Stats(); st.PackedChunks == 0 {
		t.Fatal("expected packed frames across the bursts")
	}
}

// TestPackingDisabledInterop runs a mixed ring — one member with packing
// off, one with it on — through small and fragmented messages. Receivers
// always understand packed frames regardless of their own flag, and a
// packing-off sender must emit exactly one chunk per frame.
func TestPackingDisabledInterop(t *testing.T) {
	c := &cluster{t: t, net: simnet.New(simnet.Config{}), procs: make(map[string]*Processor)}
	c.addWithPacking("a", PackingOff)
	c.addWithPacking("b", PackingOn)
	t.Cleanup(func() {
		for _, p := range c.procs {
			p.Stop()
		}
	})
	for _, p := range c.procs {
		awaitView(t, p, []string{"a", "b"}, 3*time.Second)
	}
	const small = 20
	big := bytes.Repeat([]byte{0xC3}, 40_000) // fragmented: >> one MTU
	for i := 0; i < small; i++ {
		if err := c.procs["a"].Multicast([]byte(fmt.Sprintf("a-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.procs["a"].Multicast(big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < small; i++ {
		if err := c.procs["b"].Multicast([]byte(fmt.Sprintf("b-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.procs["b"].Multicast(big); err != nil {
		t.Fatal(err)
	}
	total := 2*small + 2
	dsA := collect(t, c.procs["a"], total, 15*time.Second)
	dsB := collect(t, c.procs["b"], total, 15*time.Second)
	for i := range dsA {
		if !bytes.Equal(dsA[i].Payload, dsB[i].Payload) || dsA[i].Sender != dsB[i].Sender {
			t.Fatalf("order diverges at %d", i)
		}
	}
	bigSeen := 0
	for _, d := range dsA {
		if bytes.Equal(d.Payload, big) {
			bigSeen++
		}
	}
	if bigSeen != 2 {
		t.Fatalf("fragmented messages delivered %d times, want 2", bigSeen)
	}
	stA := c.procs["a"].Stats()
	if stA.PackedChunks != 0 {
		t.Fatalf("packing-off sender packed %d chunks", stA.PackedChunks)
	}
	if stA.DataFrames != stA.ChunksSent {
		t.Fatalf("packing-off sender: %d frames for %d chunks", stA.DataFrames, stA.ChunksSent)
	}
}
