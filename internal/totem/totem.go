// Package totem implements a Totem-style single-ring reliable
// totally-ordered multicast protocol, the group-communication substrate
// the Eternal system conveys IIOP messages over (Moser et al., "Totem: A
// fault-tolerant multicast group communication system", CACM 1996).
//
// The protocol is token-ring based: a token rotates around the ring of
// live processors carrying the global sequence number, an
// all-received-up-to (aru) aggregation used for flow control and garbage
// collection, and a retransmission-request list. A processor multicasts
// only while holding the token, stamping each message with the next
// sequence number, which yields agreed (gap-free, identical at every
// processor) delivery order.
//
// Membership follows Totem's shape in simplified form: token loss or the
// arrival of a Join message moves processors into a gather phase where
// they advertise the set of processors they can hear; when the
// representative (smallest address) sees a stable set, it forms a new ring
// and delivery continues. Large application messages are fragmented into
// MTU-sized chunks, each a separate ordered multicast — exactly the
// behaviour behind the paper's Figure 6, where recovery time grows with
// state size because state larger than one Ethernet frame costs multiple
// multicast messages.
//
// Guarantees within one ring lineage (an unbroken chain of reformations):
// reliable, agreed-order, gap-free delivery. A processor that joins fresh,
// or rejoins from a divergent lineage (e.g. the losing side of a
// partition), is delivered a Membership view with Reset=true and resumes
// at the new ring's start sequence; Eternal's Recovery Mechanisms treat
// such members as recovering replicas and re-synchronize their state,
// which is the paper's recovery model.
package totem

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eternal/internal/cdr"
	"eternal/internal/obs"
	"eternal/internal/ring"
	"eternal/internal/simnet"
)

// Packet is one transport frame. It is an alias of simnet.Packet so a
// simulated-network endpoint satisfies Transport directly — no bridging
// goroutine copying between two identical shapes on every frame.
type Packet = simnet.Packet

// Transport is the unreliable datagram layer totem runs over: a broadcast
// medium with bounded frame size, such as internal/simnet or UDP.
//
// Buffer ownership: the payload slice passed to Send and Broadcast is
// owned by the caller and is valid only for the duration of the call. An
// implementation that needs the bytes after returning (queued delivery,
// async I/O) must copy them first. This rule is what lets the protocol
// encode frames into pooled buffers and recycle them immediately after
// handing them to the transport (see doc/PERFORMANCE.md).
type Transport interface {
	// Addr returns this endpoint's unique address.
	Addr() string
	// Send transmits one frame to the named endpoint (best effort). The
	// payload must not be retained after the call returns.
	Send(to string, payload []byte) error
	// Broadcast transmits one frame to all endpoints including this one.
	// The payload must not be retained after the call returns.
	Broadcast(payload []byte) error
	// Recv returns the delivery channel; it closes when the transport does.
	Recv() <-chan Packet
	// MTU is the maximum frame payload size.
	MTU() int
	// Close detaches the endpoint.
	Close() error
}

// NewSimnetTransport adapts a simulated-network endpoint as a Transport.
// The endpoint already satisfies the interface (Packet is simnet.Packet),
// so this is the identity; it remains as the named constructor and the
// place the conformance is pinned.
func NewSimnetTransport(ep *simnet.Endpoint) Transport { return ep }

var _ Transport = (*simnet.Endpoint)(nil)

// Delivery is one event in the totally-ordered delivery stream: either an
// application message (View == nil; reassembled from its fragments) or a
// membership view change (View != nil, Payload empty).
//
// Views are delivered at a consistent position in the stream: after every
// message of the previous ring (sequence numbers up to the view's
// StartSeq) and before every message of the new ring. Every lineage member
// therefore observes messages and view changes interleaved identically —
// the property Eternal's replicated group-metadata state machine depends
// on (e.g. all nodes must agree which requests a failed primary still
// answered).
type Delivery struct {
	Seq     uint64
	Sender  string
	Payload []byte
	View    *Membership
}

// Membership is a view change. Members is sorted. Reset reports that this
// processor did not continue the previous sequence space (fresh join or
// divergent lineage) and must be re-synchronized by the layer above.
type Membership struct {
	Epoch    uint64
	Rep      string
	Members  []string
	Reset    bool
	StartSeq uint64
}

// Stats are cumulative protocol counters.
type Stats struct {
	Multicasts     uint64
	ChunksSent     uint64
	Retransmits    uint64
	TokenRotations uint64
	Deliveries     uint64
	ViewChanges    uint64
	Tombstones     uint64
	// DataFrames counts initial data-frame transmissions (retransmissions
	// excluded). Without packing it equals ChunksSent; with packing it is
	// lower whenever sub-MTU chunks shared a frame.
	DataFrames uint64
	// PackedChunks counts chunks that traveled in a frame shared with at
	// least one other chunk.
	PackedChunks uint64
	// HurriesSent/HurriesReceived count token hurry nudges: broadcasts
	// that wake an idle-paced ring when a member enqueues a message.
	HurriesSent     uint64
	HurriesReceived uint64
	// PacedHops counts token hops parked for idle pacing before being
	// forwarded.
	PacedHops uint64
	// FastPathChunks counts chunks the fast-path leader sequenced
	// immediately (its own and forwarded ones) without a token visit;
	// ChunksSent minus FastPathChunks is the token-ordered share.
	FastPathChunks uint64
	// ForwardedChunks counts chunks this member forwarded to the
	// fast-path leader for sequencing (first transmissions and retries).
	ForwardedChunks uint64
}

// PackingFlag is a three-valued toggle whose zero value means "on", so
// packing is the default without every Config literal naming it.
type PackingFlag int

const (
	// PackingDefault enables packing (the zero value).
	PackingDefault PackingFlag = iota
	// PackingOff disables packing: one chunk per data frame, the
	// pre-packing wire behaviour. Receivers always understand packed
	// frames regardless of this flag, so mixed rings interoperate.
	PackingOff
	// PackingOn enables packing explicitly.
	PackingOn
)

// Enabled reports whether the flag turns packing on.
func (f PackingFlag) Enabled() bool { return f != PackingOff }

// FastPathMode gates the leader-ordered fast path: an LLFT-style fixed
// sequencer riding on the Totem ring, where the ring leader (the
// representative) assigns sequence numbers immediately on receipt and
// multicasts speculatively instead of waiting for a token visit.
// Delivery still happens only at the totally-ordered point; the token
// keeps rotating behind the fast path to aggregate aru, serve
// retransmissions and garbage-collect.
type FastPathMode int

const (
	// FastPathAuto (the zero value) enables the fast path only on
	// 2-member rings — the configuration whose token-wait cliff it exists
	// to close — and uses classic token rotation elsewhere.
	FastPathAuto FastPathMode = iota
	// FastPathOff forces classic token-ordered sequencing everywhere.
	FastPathOff
	// FastPathOn enables leader ordering on any multi-member ring.
	FastPathOn
)

// enabled reports whether the mode activates leader ordering for a ring
// of the given size.
func (f FastPathMode) enabled(members int) bool {
	switch f {
	case FastPathOff:
		return false
	case FastPathOn:
		return members >= 2
	default:
		return members == 2
	}
}

// String renders the mode the way the -fast-path flag spells it.
func (f FastPathMode) String() string {
	switch f {
	case FastPathOff:
		return "off"
	case FastPathOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseFastPathMode parses "auto", "off" or "on" (the -fast-path flag).
func ParseFastPathMode(s string) (FastPathMode, error) {
	switch s {
	case "auto", "":
		return FastPathAuto, nil
	case "off":
		return FastPathOff, nil
	case "on":
		return FastPathOn, nil
	}
	return FastPathAuto, fmt.Errorf("totem: unknown fast-path mode %q (want auto, off or on)", s)
}

// Config configures a Processor. Zero durations get defaults sized for
// LAN-scale simulation; tests shrink them for fast reformations.
type Config struct {
	Transport Transport
	// TokenLossTimeout triggers membership reformation when no token has
	// been seen for this long (default 250ms).
	TokenLossTimeout time.Duration
	// TokenResend retransmits the last token we forwarded if no activity
	// follows (default TokenLossTimeout/4).
	TokenResend time.Duration
	// JoinInterval is the gather-phase Join rebroadcast period (default 40ms).
	JoinInterval time.Duration
	// JoinExpiry drops gather-phase peers not heard from (default 5*JoinInterval).
	JoinExpiry time.Duration
	// StableFor is how long the alive set must stay unchanged before the
	// representative forms a ring (default 2*JoinInterval).
	StableFor time.Duration
	// Tick is the internal timer resolution (default 2ms).
	Tick time.Duration
	// MaxPerToken bounds chunks multicast per token visit (default 64).
	MaxPerToken int
	// MissThreshold is the number of token visits a missing sequence
	// number may stay unsatisfied before it is declared unrecoverable and
	// skipped (default 10).
	MissThreshold int
	// Packing gates Totem message packing: while holding the token, the
	// sender packs multiple sub-MTU chunks — possibly from different
	// application messages — into one data frame under a single sequence
	// number, instead of spending a full frame and sequence number per
	// chunk. Fragments of large messages still fill whole frames; packing
	// recovers the waste on the sub-MTU tail. The zero value enables it;
	// set PackingOff for the ablation baseline.
	Packing PackingFlag
	// FastPath gates the leader-ordered fast path (see FastPathMode). The
	// zero value enables it on 2-member rings only.
	FastPath FastPathMode
	// IdleGrace is how long after the last foreground activity the token
	// keeps rotating at wire speed before idle pacing starts (default
	// 2*Tick). Larger values spend CPU to keep request/reply gaps fast;
	// smaller ones park the ring sooner.
	IdleGrace time.Duration
	// MaxPaceTicks caps the idle pacer's exponential backoff: a long-idle
	// holder parks the token for up to this many ticks per hop (default 4,
	// further clamped so a paced rotation stays within TokenLossTimeout/4).
	MaxPaceTicks int
	// AnnounceInterval is the period of the representative's ring beacon,
	// used to discover foreign rings after a partition heals
	// (default 8*JoinInterval).
	AnnounceInterval time.Duration
	// Metrics receives the processor's live metrics (packet/byte traffic,
	// pending-queue depth, multicast→delivery latency). Nil disables
	// export; the protocol's cumulative Stats() counters work regardless.
	Metrics *obs.Registry
	// Recorder receives protocol-level flight-recorder events: token
	// losses and the other membership-reformation triggers, each anchored
	// to the processor's last delivered sequence number. Nil disables.
	Recorder *obs.Recorder
	// Spans receives per-invocation phase marks for traced multicasts
	// (enqueued behind the token, last fragment transmitted). Nil
	// disables; untraced multicasts never touch it either way.
	Spans *obs.SpanRecorder
	// RotationCapacity bounds the token-rotation profiler's sample ring
	// (default obs.DefaultRotationCapacity; negative disables profiling).
	RotationCapacity int
}

func (c Config) withDefaults() Config {
	if c.TokenLossTimeout <= 0 {
		c.TokenLossTimeout = 250 * time.Millisecond
	}
	if c.TokenResend <= 0 {
		c.TokenResend = c.TokenLossTimeout / 4
	}
	if c.JoinInterval <= 0 {
		c.JoinInterval = 40 * time.Millisecond
	}
	if c.JoinExpiry <= 0 {
		c.JoinExpiry = 5 * c.JoinInterval
	}
	if c.StableFor <= 0 {
		c.StableFor = 2 * c.JoinInterval
	}
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.MaxPerToken <= 0 {
		c.MaxPerToken = 64
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 10
	}
	if c.IdleGrace <= 0 {
		c.IdleGrace = 2 * c.Tick
	}
	if c.MaxPaceTicks <= 0 {
		c.MaxPaceTicks = 4
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = 8 * c.JoinInterval
	}
	return c
}

// fragMargin is the reserve for chunk headers within one frame.
const fragMargin = 192

// maxRtrPerToken bounds the retransmission list so tokens fit one frame.
const maxRtrPerToken = 100

// idleHopsCap bounds the token's idle-hop counter so it cannot wrap.
const idleHopsCap = 1 << 20

// Errors returned by Processor methods.
var (
	ErrStopped     = errors.New("totem: processor stopped")
	ErrAddrTooLong = errors.New("totem: transport address exceeds 64 bytes")
	ErrMTUTooSmall = errors.New("totem: transport MTU too small for protocol headers")
)

const (
	stateGather = iota
	stateOperational
)

type joinRecord struct {
	msg    *joinMsg
	seenAt time.Time
}

type partial struct {
	frags  [][]byte
	next   uint32
	broken bool
}

// Processor is one member of the totem ring.
type Processor struct {
	cfg  Config
	tr   Transport
	addr string

	submitCh  chan submission
	closeCh   chan struct{}
	closeOnce sync.Once
	done      chan struct{}

	deliveries *pump[Delivery]
	views      *pump[Membership]

	// Protocol state below is owned exclusively by the run goroutine.
	state    int
	ring     ringIdentity
	prevRing ringIdentity
	members  []string
	seqHigh  uint64
	myAru    uint64
	gcLow    uint64
	store    map[uint64]*dataMsg
	// pending holds chunks enqueued locally and awaiting a token visit; a
	// ring buffer so delivered chunks are released, not retained by a
	// shifted slice's backing array.
	pending ring.Buffer[chunk]
	packing bool
	msgID   uint64
	reasm   map[string]*partial
	round   uint64
	miss    map[uint64]int

	joinInfo     map[string]joinRecord
	stableSince  time.Time
	aliveKey     string
	lastJoinSent time.Time
	maxEpoch     uint64

	// pendingViews holds view changes whose stream position (StartSeq) the
	// local aru has not reached yet; they are released by advanceAru.
	pendingViews []pendingView

	lastTokenAt   time.Time
	lastSentToken *tokenMsg
	lastSentAt    time.Time
	tokenResends  int
	// parkedToken holds the token while pacing an idle ring (including the
	// single-member self-delivery case); it is released once parkedUntil
	// passes (the adaptive pacer's backoff), or immediately when new
	// foreground messages are enqueued or a hurry nudge arrives.
	parkedToken    *tokenMsg
	parkedUntil    time.Time
	lastAnnounceAt time.Time

	// Adaptive pacing state. lastActivityAt is the last time this member
	// did foreground protocol work (sent or forwarded non-background
	// chunks, served or requested retransmissions); the pacer holds wire
	// speed for IdleGrace past it. hurried marks that a hurry nudge allows
	// the next forward to skip pacing once. lastPaceTicks is the backoff
	// applied by the most recent forward (0 = wire speed), recorded into
	// the rotation profile.
	lastActivityAt time.Time
	lastHurryAt    time.Time
	hurried        bool
	lastPaceTicks  int

	// Leader-ordered fast path state (see FastPathMode). fastPath and
	// leader are fixed per ring at install time. Followers keep submitted
	// chunks in pending until their sequenced copies are delivered:
	// headFseq is the forward sequence number of the pending head and
	// fwdCount the number of chunks (from the head) already forwarded
	// once; the leader's fwdMarks holds the per-sender in-order acceptance
	// watermark, and fwdHeld parks frames that arrived ahead of a gap
	// (the medium reorders back-to-back unicasts) until the gap fills.
	fastPath  bool
	leader    string
	headFseq  uint64
	fwdCount  int
	lastFwdAt time.Time
	fwdMarks  map[string]uint64
	fwdHeld   map[string]map[uint64]*forwardMsg

	nMulticasts atomic.Uint64
	nChunks     atomic.Uint64
	nRetrans    atomic.Uint64
	nRotations  atomic.Uint64
	nDeliveries atomic.Uint64
	nViews      atomic.Uint64
	nTombstones atomic.Uint64
	nDataFrames atomic.Uint64
	nPacked     atomic.Uint64
	nHurrySent  atomic.Uint64
	nHurryRecv  atomic.Uint64
	nPacedHops  atomic.Uint64
	nFastChunks atomic.Uint64
	nFwdChunks  atomic.Uint64

	// Metrics export (nil-safe via a private registry when unconfigured).
	mPktsIn   *obs.Counter
	mBytesIn  *obs.Counter
	mPktsOut  *obs.Counter
	mBytesOut *obs.Counter
	// mPending is the sequencing queue depth: chunks enqueued locally and
	// waiting for a token visit to be stamped and multicast.
	mPending *obs.Gauge
	// mLatency is the multicast→delivery latency of this processor's own
	// messages (submit to agreed-order delivery, the full token-ring
	// ordering cost).
	mLatency *obs.Histogram
	// mTokenHold/mTokenInterval are the rotation profiler's histograms:
	// how long this node holds each token visit, and the full-rotation
	// interval between visits.
	mTokenHold     *obs.Histogram
	mTokenInterval *obs.Histogram
	// rotations is the token-rotation profiler's bounded sample ring
	// (nil when disabled).
	rotations *obs.RotationLog
	// sendTimes records the submit metadata of locally originated
	// messages by msgID; owned by the run goroutine.
	sendTimes map[uint64]sendMeta
}

// submission is one application message queued for the run goroutine:
// its pre-fragmented chunks plus the span-tracing metadata. background
// marks low-urgency control traffic (audit marks and reports) that rides
// the paced token instead of waking it.
type submission struct {
	chunks     [][]byte
	trace      uint64
	reply      bool
	background bool
}

// sendMeta is what the processor remembers about a locally originated
// message between submission and self-delivery.
type sendMeta struct {
	at         time.Time
	trace      uint64
	reply      bool
	background bool
}

// Start creates a processor on the given transport and begins gathering
// membership immediately.
func Start(cfg Config) (*Processor, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, errors.New("totem: Config.Transport is required")
	}
	addr := cfg.Transport.Addr()
	if len(addr) > 64 {
		return nil, fmt.Errorf("%w: %q", ErrAddrTooLong, addr)
	}
	if cfg.Transport.MTU() < fragMargin+64 {
		return nil, fmt.Errorf("%w: %d", ErrMTUTooSmall, cfg.Transport.MTU())
	}
	p := &Processor{
		cfg:        cfg,
		tr:         cfg.Transport,
		addr:       addr,
		submitCh:   make(chan submission, 256),
		closeCh:    make(chan struct{}),
		done:       make(chan struct{}),
		deliveries: newPump[Delivery](),
		views:      newPump[Membership](),
		store:      make(map[uint64]*dataMsg),
		reasm:      make(map[string]*partial),
		miss:       make(map[uint64]int),
		joinInfo:   make(map[string]joinRecord),
		sendTimes:  make(map[uint64]sendMeta),
		packing:    cfg.Packing.Enabled(),
	}
	if cfg.RotationCapacity >= 0 {
		p.rotations = obs.NewRotationLog(cfg.RotationCapacity)
	}
	p.registerMetrics(cfg.Metrics)
	go p.run()
	return p, nil
}

// registerMetrics wires the processor's export surface into the registry
// (a private one when nil, so hot paths never nil-check).
func (p *Processor) registerMetrics(r *obs.Registry) {
	if r == nil {
		r = obs.NewRegistry()
	}
	p.mPktsIn = r.Counter("eternal_totem_packets_in_total", "transport frames received")
	p.mBytesIn = r.Counter("eternal_totem_bytes_in_total", "transport bytes received")
	p.mPktsOut = r.Counter("eternal_totem_packets_out_total", "transport frames sent (broadcast and unicast)")
	p.mBytesOut = r.Counter("eternal_totem_bytes_out_total", "transport bytes sent")
	p.mPending = r.Gauge("eternal_totem_sequencer_queue_depth", "chunks enqueued and awaiting a token visit for sequencing")
	p.mLatency = r.Histogram("eternal_totem_mcast_delivery_seconds", "multicast submit to agreed-order delivery latency of own messages", nil)
	p.mTokenHold = r.Histogram("eternal_totem_token_hold_seconds", "time this node held each token visit (retransmission service + pending-queue drain)", nil)
	p.mTokenInterval = r.Histogram("eternal_totem_token_interval_seconds", "full-rotation interval between this node's token visits", nil)
	for _, c := range []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"eternal_totem_multicasts_total", "application messages submitted for total ordering", &p.nMulticasts},
		{"eternal_totem_chunks_sent_total", "MTU-sized chunks multicast while holding the token", &p.nChunks},
		{"eternal_totem_retransmits_total", "chunks retransmitted to serve token Rtr requests", &p.nRetrans},
		{"eternal_totem_token_rotations_total", "completed token rotations observed as aru setter", &p.nRotations},
		{"eternal_totem_deliveries_total", "messages delivered in agreed order", &p.nDeliveries},
		{"eternal_totem_view_changes_total", "membership views delivered", &p.nViews},
		{"eternal_totem_tombstones_total", "unrecoverable sequence numbers skipped", &p.nTombstones},
		{"eternal_totem_data_frames_total", "data frames initially transmitted (retransmissions excluded)", &p.nDataFrames},
		{"eternal_totem_packed_messages_total", "chunks that shared a packed frame with at least one other chunk", &p.nPacked},
		{"eternal_totem_hurries_sent_total", "token hurry nudges broadcast on enqueue into an idle-paced ring", &p.nHurrySent},
		{"eternal_totem_hurries_received_total", "token hurry nudges received from peers", &p.nHurryRecv},
		{"eternal_totem_paced_hops_total", "token hops parked for idle pacing before forwarding", &p.nPacedHops},
		{"eternal_totem_fastpath_chunks_total", "chunks the fast-path leader sequenced immediately, without a token visit", &p.nFastChunks},
		{"eternal_totem_fastpath_forwards_total", "chunks forwarded to the fast-path leader for sequencing (including retries)", &p.nFwdChunks},
	} {
		v := c.v
		r.CounterFunc(c.name, c.help, func() float64 { return float64(v.Load()) })
	}
	r.GaugeFunc("eternal_totem_frames_per_message", "data frames per application message; packing drives this below the fragment count", func() float64 {
		m := p.nMulticasts.Load()
		if m == 0 {
			return 0
		}
		return float64(p.nDataFrames.Load()) / float64(m)
	})
}

// Addr returns the processor's transport address.
func (p *Processor) Addr() string { return p.addr }

// Deliveries returns the agreed-order delivery stream.
func (p *Processor) Deliveries() <-chan Delivery { return p.deliveries.Out() }

// Views returns the membership view stream.
func (p *Processor) Views() <-chan Membership { return p.views.Out() }

// Stats returns a snapshot of the protocol counters.
func (p *Processor) Stats() Stats {
	return Stats{
		Multicasts:      p.nMulticasts.Load(),
		ChunksSent:      p.nChunks.Load(),
		Retransmits:     p.nRetrans.Load(),
		TokenRotations:  p.nRotations.Load(),
		Deliveries:      p.nDeliveries.Load(),
		ViewChanges:     p.nViews.Load(),
		Tombstones:      p.nTombstones.Load(),
		DataFrames:      p.nDataFrames.Load(),
		PackedChunks:    p.nPacked.Load(),
		HurriesSent:     p.nHurrySent.Load(),
		HurriesReceived: p.nHurryRecv.Load(),
		PacedHops:       p.nPacedHops.Load(),
		FastPathChunks:  p.nFastChunks.Load(),
		ForwardedChunks: p.nFwdChunks.Load(),
	}
}

// PendingChunks reports the current depth of this member's sequencing
// queue: chunks submitted locally and not yet multicast on a token visit.
// Zero means everything this member submitted has reached the wire — the
// self-clocking signal the state-transfer streamer paces on.
func (p *Processor) PendingChunks() int64 { return p.mPending.Value() }

// Multicast submits one application message for reliable totally-ordered
// delivery to all ring members (including the sender). The payload is
// fragmented into MTU-sized chunks transparently; delivery is whole
// messages. Multicast may block briefly when the submit queue is full.
func (p *Processor) Multicast(payload []byte) error {
	return p.MulticastTraced(payload, 0, false)
}

// MulticastBackground is Multicast for low-urgency control traffic
// (consistency-audit marks and reports): the message rides the paced
// token without resetting the idle counter, waking a parked token or
// triggering a hurry nudge, so a quiescent ring stays paced across audit
// epochs. Ordering and reliability guarantees are identical.
func (p *Processor) MulticastBackground(payload []byte) error {
	return p.submit(payload, 0, false, true)
}

// MulticastTraced is Multicast carrying span-tracing metadata: the
// message's envelope trace id (0 = untraced) and whether it is a reply,
// so the configured span recorder can stamp the enqueue and transmit
// phases under the right name.
func (p *Processor) MulticastTraced(payload []byte, trace uint64, reply bool) error {
	return p.submit(payload, trace, reply, false)
}

func (p *Processor) submit(payload []byte, trace uint64, reply, background bool) error {
	chunkSize := p.tr.MTU() - fragMargin - len(p.addr)
	// One defensive copy of the whole payload; chunks are subslices of it
	// rather than per-chunk allocations.
	buf := make([]byte, len(payload))
	copy(buf, payload)
	var chunks [][]byte
	if len(buf) == 0 {
		chunks = [][]byte{{}}
	}
	for off := 0; off < len(buf); off += chunkSize {
		end := min(off+chunkSize, len(buf))
		chunks = append(chunks, buf[off:end:end])
	}
	select {
	case p.submitCh <- submission{chunks: chunks, trace: trace, reply: reply, background: background}:
		p.nMulticasts.Add(1)
		return nil
	case <-p.done:
		return ErrStopped
	}
}

// Stop shuts the processor down and closes its transport. Other members
// detect the silence as a failure and reform the ring.
func (p *Processor) Stop() {
	p.closeOnce.Do(func() { close(p.closeCh) })
	<-p.done
}

func (p *Processor) run() {
	defer func() {
		p.tr.Close()
		// Drain the transport so its forwarding goroutine can exit.
		go func() {
			for range p.tr.Recv() {
			}
		}()
		p.deliveries.Close()
		p.views.Close()
		close(p.done)
	}()
	ticker := time.NewTicker(p.cfg.Tick)
	defer ticker.Stop()

	p.enterGather(time.Now(), "")

	for {
		select {
		case <-p.closeCh:
			return
		case sub := <-p.submitCh:
			p.enqueue(sub)
			p.kick(sub.background, time.Now())
		case pkt, ok := <-p.tr.Recv():
			if !ok {
				return
			}
			p.handlePacket(pkt, time.Now())
		case now := <-ticker.C:
			p.onTick(now)
		}
	}
}

func (p *Processor) enqueue(sub submission) {
	p.msgID++
	id := p.msgID
	total := uint32(len(sub.chunks))
	for i, c := range sub.chunks {
		p.pending.Push(chunk{
			Sender:    p.addr,
			MsgID:     id,
			FragIdx:   uint32(i),
			FragTotal: total,
			Payload:   c,
		})
	}
	p.sendTimes[id] = sendMeta{at: time.Now(), trace: sub.trace, reply: sub.reply, background: sub.background}
	if sub.trace != 0 {
		if sub.reply {
			p.cfg.Spans.MarkOpen(sub.trace, obs.SpanReplyEnqueued)
		} else {
			p.cfg.Spans.Mark(sub.trace, obs.SpanEnqueued)
		}
	}
	p.mPending.Set(int64(p.pending.Len()))
}

func (p *Processor) handlePacket(pkt Packet, now time.Time) {
	p.mPktsIn.Inc()
	p.mBytesIn.Add(uint64(len(pkt.Payload)))
	msg, err := decodePacket(pkt.Payload)
	if err != nil {
		return // corrupt frame: drop, like a bad checksum
	}
	switch m := msg.(type) {
	case *dataMsg:
		p.handleData(m, now)
	case *tokenMsg:
		p.handleToken(m, now)
	case *joinMsg:
		p.handleJoin(m, now)
	case *formMsg:
		p.handleForm(m, now)
	case *announceMsg:
		p.handleAnnounce(m, now)
	case *hurryMsg:
		p.handleHurry(m, now)
	case *forwardMsg:
		p.handleForward(m, now)
	}
}

// kick dispatches a freshly enqueued submission onto whatever path gets
// it sequenced fastest. Background traffic takes none of them: it rides
// the next (possibly paced) token visit so audit marks do not keep a
// quiescent ring spinning.
func (p *Processor) kick(background bool, now time.Time) {
	if p.state != stateOperational {
		return
	}
	if p.fastPath {
		// Leader ordering: no token involvement on the submit path at all.
		if p.addr == p.leader {
			p.fastDrain(now)
		} else {
			p.forwardPending(now, p.fwdCount)
		}
		return
	}
	if background {
		return
	}
	if p.parkedToken != nil {
		// Wake our own paced token immediately so enqueueing does not
		// cost a tick of latency.
		p.releaseParked(now)
		return
	}
	if len(p.members) > 1 && now.Sub(p.lastHurryAt) >= p.cfg.Tick {
		// The token may be parked at another member: nudge it loose
		// rather than waiting out up to members×MaxPaceTicks×Tick of
		// pacing. Rate-limited to one nudge per tick; during an active
		// burst the extra frame is noise the holder ignores.
		p.lastHurryAt = now
		p.hurried = true
		p.nHurrySent.Add(1)
		p.bcastMsg(&hurryMsg{Ring: p.ring, Origin: p.addr})
	}
}

// handleHurry reacts to a peer's hurry nudge: release a parked token at
// once and let the next forward skip pacing, so the token crosses the
// ring at wire speed until the nudging enqueuer is served.
func (p *Processor) handleHurry(m *hurryMsg, now time.Time) {
	if p.state != stateOperational || m.Ring != p.ring || m.Origin == p.addr {
		return
	}
	p.nHurryRecv.Add(1)
	p.hurried = true
	if p.parkedToken != nil {
		p.releaseParked(now)
	}
}

// --- operational phase ---

func (p *Processor) handleData(m *dataMsg, now time.Time) {
	if p.state != stateOperational {
		return
	}
	if m.Ring != p.ring {
		// Stale traffic from a superseded ring (in flight across a
		// reformation) or genuinely foreign traffic. Either way ignore it:
		// lineage peers recover real gaps by retransmission, and foreign
		// rings are discovered through the announce beacon, which carries
		// enough identity to distinguish stale from foreign.
		return
	}
	if m.Seq <= p.gcLow || m.Seq <= p.myAru {
		return // already garbage-collected or delivered
	}
	if _, dup := p.store[m.Seq]; dup {
		return
	}
	p.store[m.Seq] = m
	delete(p.miss, m.Seq)
	if m.Seq > p.seqHigh {
		p.seqHigh = m.Seq
	}
	p.advanceAru()
}

// handleAnnounce reacts to a ring beacon: a beacon naming a ring we are
// not part of means a foreign ring shares the segment (healed partition),
// so we reform to merge — unless the beacon is recognizably stale (its
// representative is one of our members and its epoch is not newer).
func (p *Processor) handleAnnounce(m *announceMsg, now time.Time) {
	if m.Ring.Epoch > p.maxEpoch {
		// Gatherers learn the current epoch from beacons so their joins
		// are not dismissed as stale.
		p.maxEpoch = m.Ring.Epoch
	}
	if p.state != stateOperational || m.Ring == p.ring {
		return
	}
	if slices.Contains(p.members, m.Ring.Rep) && m.Ring.Epoch <= p.ring.Epoch {
		return // stale beacon from one of our own earlier rings
	}
	p.enterGather(now, "foreign-ring")
}

func (p *Processor) handleToken(tok *tokenMsg, now time.Time) {
	if p.state != stateOperational || tok.Ring != p.ring {
		return
	}
	if tok.Round <= p.round {
		return // duplicate from token retransmission
	}
	prevVisit := p.lastTokenAt
	p.round = tok.Round
	p.lastTokenAt = now
	p.lastSentToken = nil
	p.tokenResends = 0

	if tok.Seq > p.seqHigh {
		p.seqHigh = tok.Seq
	}
	if p.fastPath && p.addr == p.leader && p.seqHigh > tok.Seq {
		// Fast-path sequencing ran ahead of the token; advertise the high
		// mark so followers can request anything the speculative
		// multicasts lost.
		tok.Seq = p.seqHigh
	}

	// 1. Serve retransmission requests we can satisfy.
	served := 0
	var unsatisfied []uint64
	for _, s := range tok.Rtr {
		if m, ok := p.store[s]; ok && len(m.Chunks) > 0 {
			re := *m
			re.Ring = p.ring // re-tag under the current ring
			p.bcastMsg(&re)
			p.nRetrans.Add(1)
			served++
		} else if s > p.gcLow {
			unsatisfied = append(unsatisfied, s)
		}
	}
	rtrDone := now
	if p.rotations != nil {
		rtrDone = time.Now()
	}

	// 2. Request what we are missing.
	rtr := unsatisfied
	have := make(map[uint64]bool, len(rtr))
	for _, s := range rtr {
		have[s] = true
	}
	for s := p.myAru + 1; s <= tok.Seq && len(rtr) < maxRtrPerToken; s++ {
		if _, ok := p.store[s]; ok || have[s] {
			continue
		}
		rtr = append(rtr, s)
		p.miss[s]++
		if p.miss[s] > p.cfg.MissThreshold {
			// No live member holds this message: skip it with a chunkless
			// tombstone so delivery can proceed (see package doc).
			p.store[s] = &dataMsg{Ring: p.ring, Seq: s}
			delete(p.miss, s)
			rtr = rtr[:len(rtr)-1]
			p.nTombstones.Add(1)
		}
	}
	tok.Rtr = rtr
	p.advanceAru()

	// 3. Multicast pending chunks while we hold the token. Fast-path
	// followers never sequence: their pending queue is the
	// un-acknowledged forward window, drained as sequenced copies are
	// delivered; anything not yet forwarded goes to the leader now.
	pendingBefore := p.pending.Len()
	var sent, fgSent int
	if p.fastPath && p.addr != p.leader {
		if p.pending.Len() > p.fwdCount {
			p.forwardPending(now, p.fwdCount)
		}
	} else {
		sent, fgSent = p.sendPending(tokenAlloc(tok), false)
	}

	// Token idling: IdleHops counts consecutive hops on which no holder
	// did foreground work — the ring-wide idleness signal the adaptive
	// pacer (paceTicks) combines with the local IdleGrace window.
	// Background chunks (audit marks) ride the token without resetting
	// the counter, so a quiescent ring stays paced across audit epochs.
	if served > 0 || fgSent > 0 || len(tok.Rtr) > 0 {
		tok.IdleHops = 0
		p.lastActivityAt = now
	} else if tok.IdleHops < idleHopsCap {
		tok.IdleHops++
	}

	// 4. Aggregate aru; a completed rotation fixes the GC point.
	if tok.AruSetter == "" || tok.AruSetter == p.addr {
		if tok.AruSetter == p.addr {
			tok.GCSeq = tok.Aru
			p.nRotations.Add(1)
		}
		tok.Aru = p.myAru
		tok.AruSetter = p.addr
	} else if p.myAru < tok.Aru {
		tok.Aru = p.myAru
	}

	// 5. Garbage-collect messages everyone has.
	if tok.GCSeq > p.gcLow {
		for s := p.gcLow + 1; s <= tok.GCSeq; s++ {
			delete(p.store, s)
		}
		p.gcLow = tok.GCSeq
	}

	// 6. Forward the token, then profile the visit (the forward decides
	// the pacing state the sample records).
	idleHops := tok.IdleHops
	var end time.Time
	if p.rotations != nil {
		end = time.Now()
	}
	p.forwardToken(tok, now)
	if p.rotations != nil {
		sample := obs.TokenRotation{
			At:            now,
			Round:         p.round,
			HoldUs:        float64(end.Sub(now).Nanoseconds()) / 1e3,
			RetransUs:     float64(rtrDone.Sub(now).Nanoseconds()) / 1e3,
			SendUs:        float64(end.Sub(rtrDone).Nanoseconds()) / 1e3,
			RetransServed: served,
			ChunksSent:    sent,
			PendingBefore: pendingBefore,
			PendingAfter:  p.pending.Len(),
			IdleHops:      idleHops,
			Paced:         p.lastPaceTicks > 0,
			PaceTicks:     p.lastPaceTicks,
		}
		if !prevVisit.IsZero() {
			sample.IntervalUs = float64(now.Sub(prevVisit).Nanoseconds()) / 1e3
			p.mTokenInterval.ObserveDuration(now.Sub(prevVisit))
		}
		p.mTokenHold.ObserveDuration(end.Sub(now))
		p.rotations.Record(sample)
	}
}

// Rotations returns up to max most recent token-rotation profiler
// samples, oldest first (nil when profiling is disabled).
func (p *Processor) Rotations(max int) []obs.TokenRotation {
	return p.rotations.Last(max)
}

// tokenAlloc is the classic sequence allocator: each frame takes the
// token's next sequence number.
func tokenAlloc(tok *tokenMsg) func() uint64 {
	return func() uint64 { tok.Seq++; return tok.Seq }
}

// sendPending multicasts queued chunks under sequence numbers from alloc,
// bounded by MaxPerToken chunks. It returns how many chunks were sent and
// how many of those were foreground (non-background) — the count that
// feeds the idle pacer. With packing enabled, consecutive sub-MTU chunks
// — possibly belonging to different application messages — share one
// frame and one sequence number; the conservative wireCost bound keeps
// each packed frame within the MTU without a trial encode. fast marks
// frames sequenced by the leader-ordered fast path (counters only; the
// wire format is identical).
func (p *Processor) sendPending(alloc func() uint64, fast bool) (sent, fgSent int) {
	mtu := p.tr.MTU()
	for sent < p.cfg.MaxPerToken && p.pending.Len() > 0 {
		first, _ := p.pending.Pop()
		sent++
		frame := &dataMsg{Chunks: []chunk{first}}
		size := packedFrameOverhead + len(p.ring.Rep) + first.wireCost()
		if p.packing {
			for sent < p.cfg.MaxPerToken {
				next, ok := p.pending.Peek()
				if !ok || size+next.wireCost() > mtu {
					break
				}
				p.pending.Pop()
				sent++
				frame.Chunks = append(frame.Chunks, next)
				size += next.wireCost()
			}
		}
		frame.Ring = p.ring
		frame.Seq = alloc()
		p.store[frame.Seq] = frame
		if frame.Seq > p.seqHigh {
			p.seqHigh = frame.Seq
		}
		p.bcastMsg(frame)
		p.nChunks.Add(uint64(len(frame.Chunks)))
		p.nDataFrames.Add(1)
		if len(frame.Chunks) > 1 {
			p.nPacked.Add(uint64(len(frame.Chunks)))
		}
		if fast {
			p.nFastChunks.Add(uint64(len(frame.Chunks)))
		}
		for i := range frame.Chunks {
			c := &frame.Chunks[i]
			meta, ok := p.sendTimes[c.MsgID]
			if !ok || !meta.background {
				fgSent++
			}
			if p.cfg.Spans == nil || c.FragIdx != c.FragTotal-1 {
				continue // the message is on the wire once its last fragment is
			}
			if ok && meta.trace != 0 {
				if meta.reply {
					p.cfg.Spans.MarkOpen(meta.trace, obs.SpanReplyTransmitted)
				} else {
					p.cfg.Spans.Mark(meta.trace, obs.SpanTransmitted)
				}
			}
		}
	}
	if sent > 0 {
		p.mPending.Set(int64(p.pending.Len()))
		p.advanceAru()
	}
	return sent, fgSent
}

// fastDrain sequences locally enqueued chunks immediately — the
// leader-ordered fast path's submit side. The leader stamps and
// multicasts without waiting for a token visit; the rotating token still
// aggregates aru, serves retransmissions and garbage-collects behind it.
func (p *Processor) fastDrain(now time.Time) {
	for p.pending.Len() > 0 {
		sent, fgSent := p.sendPending(func() uint64 { p.seqHigh++; return p.seqHigh }, true)
		if fgSent > 0 {
			p.lastActivityAt = now
		}
		if sent == 0 {
			return
		}
	}
}

func (p *Processor) forwardToken(tok *tokenMsg, now time.Time) {
	tok.Round++
	p.lastPaceTicks = 0
	succ := p.successor()
	if succ == p.addr {
		// Single-member ring: drain everything pending, then pace the
		// self-rotation (wire speed would be a hot loop).
		for p.pending.Len() > 0 {
			p.sendPending(tokenAlloc(tok), false)
		}
		p.park(tok, now, max(1, p.paceTicks(tok, now)))
		return
	}
	if ticks := p.paceTicks(tok, now); ticks > 0 {
		p.park(tok, now, ticks)
		return
	}
	p.transmitToken(tok, succ, now)
}

// paceTicks decides whether this hop should pace the token and for how
// many ticks; zero means forward at wire speed. Pacing starts after a
// fully idle rotation (IdleHops covers every member): one tick per hop
// at first, and once IdleGrace has also passed since this member's last
// foreground activity the backoff doubles with each further idle
// rotation up to MaxPaceTicks, clamped so a fully paced rotation stays
// within a quarter of the token-loss timeout. An idle-but-recent ring
// therefore never spins at wire speed — a hurry nudge (or a local
// enqueue) is what cancels pacing when latency matters.
func (p *Processor) paceTicks(tok *tokenMsg, now time.Time) int {
	members := len(p.members)
	if int(tok.IdleHops) < members {
		return 0
	}
	if p.hurried {
		// A nudged token crosses this hop at wire speed (once).
		p.hurried = false
		return 0
	}
	if now.Sub(p.lastActivityAt) < p.cfg.IdleGrace {
		return 1
	}
	ticks := 1
	for r := int(tok.IdleHops)/members - 1; r > 0 && ticks < p.cfg.MaxPaceTicks; r-- {
		ticks <<= 1
	}
	if ticks > p.cfg.MaxPaceTicks {
		ticks = p.cfg.MaxPaceTicks
	}
	if budget := int(p.cfg.TokenLossTimeout / 4 / (time.Duration(members) * p.cfg.Tick)); budget < ticks {
		ticks = max(budget, 1)
	}
	return ticks
}

// park holds the token for the given number of ticks; onTick releases it
// once parkedUntil passes (or sooner, on enqueue or hurry).
func (p *Processor) park(tok *tokenMsg, now time.Time, ticks int) {
	p.parkedToken = tok
	p.parkedUntil = now.Add(time.Duration(ticks-1) * p.cfg.Tick)
	p.lastPaceTicks = ticks
	p.nPacedHops.Add(1)
}

func (p *Processor) transmitToken(tok *tokenMsg, succ string, now time.Time) {
	p.lastSentToken = tok
	p.lastSentAt = now
	p.tokenResends = 0
	p.sendMsg(succ, tok)
}

// releaseParked resumes a paced token: any newly-enqueued chunks are sent
// first, then the token moves on (or is re-handled on single-member rings).
func (p *Processor) releaseParked(now time.Time) {
	tok := p.parkedToken
	p.parkedToken = nil
	if p.state != stateOperational || tok.Ring != p.ring {
		return // ring changed while parked; the new ring mints a new token
	}
	if p.pending.Len() > 0 && !(p.fastPath && p.addr != p.leader) {
		if p.fastPath && p.seqHigh > tok.Seq {
			tok.Seq = p.seqHigh
		}
		if _, fgSent := p.sendPending(tokenAlloc(tok), false); fgSent > 0 {
			tok.IdleHops = 0
			p.lastActivityAt = now
		}
	}
	succ := p.successor()
	if succ == p.addr {
		p.handleToken(tok, now)
		return
	}
	p.transmitToken(tok, succ, now)
}

func (p *Processor) successor() string {
	i := slices.Index(p.members, p.addr)
	if i < 0 {
		return p.addr
	}
	return p.members[(i+1)%len(p.members)]
}

// forwardPending unicasts pending chunks from position from onward to the
// fast-path leader for immediate sequencing, splitting across MTU-sized
// forward frames. Each chunk carries a per-ring forward sequence number
// (headFseq + position) that stays stable across retries, so the leader's
// in-order acceptance window sequences every chunk exactly once no matter
// how forwards are lost, duplicated or reordered. from == fwdCount sends
// only new chunks (the submit path); from == 0 resends everything
// un-acknowledged (the retry path, which must be cumulative: the leader
// rejects out-of-order arrivals, so a lost frame's chunks have to be
// re-offered before anything after them).
func (p *Processor) forwardPending(now time.Time, from int) {
	n := p.pending.Len()
	if n == 0 || from >= n {
		return
	}
	p.lastFwdAt = now
	mtu := p.tr.MTU()
	overhead := fwdFrameOverhead + len(p.addr) + len(p.ring.Rep)
	frame := &forwardMsg{Ring: p.ring, Sender: p.addr, Start: p.headFseq + uint64(from)}
	size := overhead
	i := 0
	p.pending.Each(func(c *chunk) {
		pos := i
		i++
		if pos < from {
			return
		}
		if len(frame.Chunks) > 0 && size+c.wireCost() > mtu {
			p.nFwdChunks.Add(uint64(len(frame.Chunks)))
			p.sendMsg(p.leader, frame)
			frame = &forwardMsg{Ring: p.ring, Sender: p.addr, Start: p.headFseq + uint64(pos)}
			size = overhead
		}
		var flags byte
		meta, ok := p.sendTimes[c.MsgID]
		if ok && meta.background {
			flags |= fwdFlagBackground
		}
		frame.Chunks = append(frame.Chunks, *c)
		frame.Flags = append(frame.Flags, flags)
		size += c.wireCost()
		if pos >= p.fwdCount {
			// First forward of this chunk: it is on its way to the
			// sequencer, the moment the span model calls "transmitted".
			if !meta.background {
				p.lastActivityAt = now
			}
			if p.cfg.Spans != nil && c.FragIdx == c.FragTotal-1 && ok && meta.trace != 0 {
				if meta.reply {
					p.cfg.Spans.MarkOpen(meta.trace, obs.SpanReplyTransmitted)
				} else {
					p.cfg.Spans.Mark(meta.trace, obs.SpanTransmitted)
				}
			}
		}
	})
	if len(frame.Chunks) > 0 {
		p.nFwdChunks.Add(uint64(len(frame.Chunks)))
		p.sendMsg(p.leader, frame)
	}
	p.fwdCount = n
}

// maxHeldForwards bounds the per-sender buffer of out-of-order forward
// frames the leader parks while a gap fills. Past the cap the frame is
// dropped and the follower's cumulative retry covers it — the buffer only
// has to absorb medium reordering, not sustained loss.
const maxHeldForwards = 32

// handleForward sequences a follower's forwarded chunks — the leader side
// of the fast path. The per-sender watermark admits only the chunks that
// extend the contiguous forward sequence: duplicates (from cumulative
// retries) fall below it and are dropped. A frame that arrives ahead of a
// gap is parked in fwdHeld and sequenced the moment the gap fills — the
// medium reorders back-to-back unicasts routinely, and bouncing the frame
// to the follower's retry timer would turn every swap into a stall. Only
// a genuinely lost frame leaves a hole for the cumulative retry.
// Sequencing is therefore exactly-once and submission-ordered per sender.
func (p *Processor) handleForward(m *forwardMsg, now time.Time) {
	if p.state != stateOperational || m.Ring != p.ring {
		return
	}
	if !p.fastPath || p.addr != p.leader || len(m.Chunks) == 0 {
		return // mode or leadership changed in flight; the sender will retry or fall back to the token
	}
	if !p.acceptForward(m, now) {
		return
	}
	// Drain any parked frames the new watermark reaches.
	for held := p.fwdHeld[m.Sender]; len(held) > 0; {
		var next *forwardMsg
		for s, f := range held {
			if s <= p.fwdMarks[m.Sender]+1 {
				next = f
				delete(held, s)
				break
			}
		}
		if next == nil {
			return
		}
		p.acceptForward(next, now)
	}
}

// acceptForward admits one forward frame against the sender's watermark:
// chunks at or below it are dropped as duplicates, a frame strictly ahead
// of it is parked in fwdHeld, and the in-order remainder is sequenced.
// Returns whether the watermark advanced.
func (p *Processor) acceptForward(m *forwardMsg, now time.Time) bool {
	wm := p.fwdMarks[m.Sender]
	if m.Start > wm+1 {
		held := p.fwdHeld[m.Sender]
		if held == nil {
			held = make(map[uint64]*forwardMsg)
			p.fwdHeld[m.Sender] = held
		}
		if len(held) < maxHeldForwards {
			held[m.Start] = m
		}
		return false
	}
	skip := 0
	if wm >= m.Start {
		skip = int(wm - m.Start + 1)
	}
	if skip >= len(m.Chunks) {
		return false
	}
	p.fwdMarks[m.Sender] = m.Start + uint64(len(m.Chunks)) - 1
	foreground := false
	for _, f := range m.Flags[skip:] {
		if f&fwdFlagBackground == 0 {
			foreground = true
		}
	}
	p.sequenceForwarded(m.Chunks[skip:], now, foreground)
	return true
}

// sequenceForwarded stamps and multicasts chunks the fast-path leader
// accepted from a follower, packing sub-MTU chunks exactly like the
// token-visit path.
func (p *Processor) sequenceForwarded(chunks []chunk, now time.Time, foreground bool) {
	mtu := p.tr.MTU()
	for start := 0; start < len(chunks); {
		end := start + 1
		size := packedFrameOverhead + len(p.ring.Rep) + chunks[start].wireCost()
		if p.packing {
			for end < len(chunks) && size+chunks[end].wireCost() <= mtu {
				size += chunks[end].wireCost()
				end++
			}
		}
		p.seqHigh++
		// Chunk payloads alias the forward packet's buffer, exactly as
		// handleData's stored frames alias theirs.
		frame := &dataMsg{Ring: p.ring, Seq: p.seqHigh, Chunks: chunks[start:end]}
		start = end
		p.store[frame.Seq] = frame
		p.bcastMsg(frame)
		p.nChunks.Add(uint64(len(frame.Chunks)))
		p.nDataFrames.Add(1)
		p.nFastChunks.Add(uint64(len(frame.Chunks)))
		if len(frame.Chunks) > 1 {
			p.nPacked.Add(uint64(len(frame.Chunks)))
		}
	}
	if foreground {
		p.lastActivityAt = now
	}
	p.advanceAru()
}

// pendingView is a view change waiting for its stream position.
type pendingView struct {
	at   uint64
	view Membership
}

// advanceAru delivers every message that has become contiguous, releasing
// pending view changes at their stream positions.
func (p *Processor) advanceAru() {
	p.releaseViews()
	for {
		m, ok := p.store[p.myAru+1]
		if !ok {
			break
		}
		p.myAru++
		delete(p.miss, p.myAru)
		p.deliverMsg(m)
		p.releaseViews()
	}
}

func (p *Processor) releaseViews() {
	for len(p.pendingViews) > 0 && p.myAru >= p.pendingViews[0].at {
		pv := p.pendingViews[0]
		p.pendingViews = p.pendingViews[1:]
		v := pv.view
		p.nViews.Add(1)
		p.views.In(v)
		p.deliveries.In(Delivery{Seq: pv.at, View: &v})
	}
}

// deliverMsg delivers one data frame: every chunk it carries, in order. A
// chunkless frame is the tombstone for an unrecoverable sequence number.
// Chunks packed into one frame share its sequence number, so consecutive
// Deliveries may carry equal Seq values.
func (p *Processor) deliverMsg(m *dataMsg) {
	for i := range m.Chunks {
		p.deliverChunk(m.Seq, &m.Chunks[i])
	}
}

func (p *Processor) deliverChunk(seq uint64, c *chunk) {
	if c.FragTotal == 0 {
		return // malformed chunk; a wire frame never carries one
	}
	if c.Sender == p.addr {
		// Fast-path followers keep submitted chunks pending until their
		// sequenced copies come back; deliveries arrive in forward order,
		// so each own delivery acknowledges the pending head. Chunks the
		// classic path sequenced were popped at send time and never match.
		if head, ok := p.pending.Peek(); ok && head.MsgID == c.MsgID && head.FragIdx == c.FragIdx {
			p.pending.Pop()
			p.headFseq++
			if p.fwdCount > 0 {
				p.fwdCount--
			}
			p.mPending.Set(int64(p.pending.Len()))
		}
	}
	if c.FragTotal == 1 {
		p.observeOwn(c)
		p.emit(Delivery{Seq: seq, Sender: c.Sender, Payload: c.Payload})
		return
	}
	key := c.Sender
	pa := p.reasm[key]
	if c.FragIdx == 0 {
		pa = &partial{}
		p.reasm[key] = pa
	}
	if pa == nil || pa.broken || pa.next != c.FragIdx {
		// A fragment whose predecessors were lost (tombstoned): the whole
		// message is undeliverable; drop the remainder quietly.
		if pa != nil {
			pa.broken = true
		}
		if c.FragIdx == c.FragTotal-1 {
			delete(p.reasm, key)
		}
		return
	}
	pa.frags = append(pa.frags, c.Payload)
	pa.next++
	if pa.next == c.FragTotal {
		delete(p.reasm, key)
		p.observeOwn(c)
		var size int
		for _, f := range pa.frags {
			size += len(f)
		}
		joined := make([]byte, 0, size)
		for _, f := range pa.frags {
			joined = append(joined, f...)
		}
		p.emit(Delivery{Seq: seq, Sender: c.Sender, Payload: joined})
	}
}

func (p *Processor) emit(d Delivery) {
	p.nDeliveries.Add(1)
	p.deliveries.In(d)
}

// observeOwn records the submit→delivery latency of a locally originated
// message, at the delivery of its last fragment.
func (p *Processor) observeOwn(c *chunk) {
	if c.Sender != p.addr {
		return
	}
	if meta, ok := p.sendTimes[c.MsgID]; ok {
		delete(p.sendTimes, c.MsgID)
		p.mLatency.ObserveDuration(time.Since(meta.at))
	}
}

// --- gather phase (membership) ---

// enterGather moves the processor into the membership gather phase.
// reason names the trigger for the flight recorder ("" for the silent
// initial gather at startup).
func (p *Processor) enterGather(now time.Time, reason string) {
	if reason != "" && p.cfg.Recorder != nil {
		typ := obs.EventReform
		if reason == "token-loss" {
			typ = obs.EventTokenLoss
		}
		p.cfg.Recorder.Record(obs.Event{
			Type: typ, Seq: p.myAru, Detail: reason,
		})
	}
	if p.state == stateOperational {
		p.prevRing = p.ring
	}
	p.state = stateGather
	p.joinInfo = make(map[string]joinRecord)
	p.stableSince = now
	p.aliveKey = ""
	p.lastSentToken = nil
	p.parkedToken = nil
	p.hurried = false
	p.fastPath = false
	p.sendJoin(now)
}

func (p *Processor) sendJoin(now time.Time) {
	p.lastJoinSent = now
	j := &joinMsg{
		Sender:   p.addr,
		Alive:    p.aliveSet(now),
		PrevRing: p.prevRing,
		HighSeq:  p.seqHigh,
		MaxEpoch: p.maxEpoch,
	}
	p.bcastMsg(j)
}

func (p *Processor) aliveSet(now time.Time) []string {
	alive := []string{p.addr}
	for a, rec := range p.joinInfo {
		if now.Sub(rec.seenAt) <= p.cfg.JoinExpiry && a != p.addr {
			alive = append(alive, a)
		}
	}
	slices.Sort(alive)
	return alive
}

func (p *Processor) handleJoin(j *joinMsg, now time.Time) {
	if j.MaxEpoch > p.maxEpoch {
		p.maxEpoch = j.MaxEpoch
	}
	if j.Sender == p.addr {
		return
	}
	if p.state == stateOperational {
		if j.MaxEpoch < p.ring.Epoch {
			// A stale join, sent before our ring formed (typically one in
			// flight from the gather that produced this very ring). Do not
			// reform; instead tell the sender which ring is current so a
			// genuine joiner can re-join with a fresh epoch.
			ann := announceMsg{Ring: p.ring}
			p.sendMsg(j.Sender, &ann)
			return
		}
		// Someone with current knowledge is rejoining or merging: reform.
		p.enterGather(now, "peer-join")
	}
	p.joinInfo[j.Sender] = joinRecord{msg: j, seenAt: now}
	if j.HighSeq > 0 && j.PrevRing == p.prevRing && j.HighSeq > p.seqHigh {
		// A lineage peer knows of more messages than we do.
		p.seqHigh = j.HighSeq
	}
}

func (p *Processor) handleForm(f *formMsg, now time.Time) {
	if f.Ring.Epoch > p.maxEpoch {
		p.maxEpoch = f.Ring.Epoch
	}
	if !slices.Contains(f.Members, p.addr) {
		return
	}
	if p.state == stateOperational && f.Ring.Epoch <= p.ring.Epoch {
		return
	}
	if f.Ring.Rep == p.addr && p.state == stateOperational && f.Ring == p.ring {
		return // our own broadcast echoed back
	}
	p.installRing(f, now)
}

func (p *Processor) installRing(f *formMsg, now time.Time) {
	continued := p.prevRing == f.Lineage && !f.Lineage.isZero()
	// A brand-new lineage (everyone fresh, epoch 1 with zero lineage)
	// also "continues" trivially from sequence 0.
	if f.Lineage.isZero() && p.prevRing.isZero() {
		continued = true
	}
	p.state = stateOperational
	p.ring = f.Ring
	p.prevRing = f.Ring
	p.members = slices.Clone(f.Members)
	slices.Sort(p.members)
	p.round = 0
	p.lastTokenAt = now
	p.lastSentToken = nil
	p.parkedToken = nil
	p.lastAnnounceAt = now
	p.lastActivityAt = now
	p.hurried = false
	p.lastPaceTicks = 0
	// Fast-path fallback on view change: mode and leadership are fixed
	// per ring, the forward window restarts from scratch, and chunks
	// still pending (forwarded but not yet sequenced, or never forwarded)
	// drain through whichever path the new ring uses. A chunk the old
	// leader sequenced whose delivery is still in flight can be sequenced
	// a second time this way; the replication layer's duplicate filter
	// absorbs it (see DESIGN.md).
	p.fastPath = p.cfg.FastPath.enabled(len(p.members))
	p.leader = f.Ring.Rep
	p.headFseq = 1
	p.fwdCount = 0
	p.lastFwdAt = time.Time{}
	p.fwdMarks = make(map[string]uint64)
	p.fwdHeld = make(map[string]map[uint64]*forwardMsg)
	p.miss = make(map[uint64]int)
	if f.Ring.Epoch > p.maxEpoch {
		p.maxEpoch = f.Ring.Epoch
	}
	reset := !continued
	if reset {
		p.store = make(map[uint64]*dataMsg)
		p.reasm = make(map[string]*partial)
		// Own messages already multicast under the abandoned lineage will
		// never be delivered; keep submit times only for still-pending chunks.
		live := make(map[uint64]sendMeta, p.pending.Len())
		p.pending.Each(func(c *chunk) {
			if meta, ok := p.sendTimes[c.MsgID]; ok {
				live[c.MsgID] = meta
			}
		})
		p.sendTimes = live
		p.myAru = f.StartSeq
		p.gcLow = f.StartSeq
		p.seqHigh = f.StartSeq
		// Views queued for positions in the abandoned sequence space are
		// meaningless now.
		p.pendingViews = nil
	} else {
		if f.StartSeq > p.seqHigh {
			p.seqHigh = f.StartSeq
		}
		// Drop partial reassemblies from members that did not survive.
		for sender := range p.reasm {
			if !slices.Contains(p.members, sender) {
				delete(p.reasm, sender)
			}
		}
	}
	p.pendingViews = append(p.pendingViews, pendingView{
		at: f.StartSeq,
		view: Membership{
			Epoch:    f.Ring.Epoch,
			Rep:      f.Ring.Rep,
			Members:  slices.Clone(p.members),
			Reset:    reset,
			StartSeq: f.StartSeq,
		},
	})
	p.releaseViews()
	if f.Ring.Rep == p.addr {
		// The representative injects the first token.
		tok := &tokenMsg{
			Ring:      f.Ring,
			Round:     0,
			Seq:       f.StartSeq,
			Aru:       p.myAru,
			AruSetter: p.addr,
			GCSeq:     p.gcLow,
		}
		p.forwardToken(tok, now)
	}
}

func (p *Processor) tryFormRing(now time.Time) {
	alive := p.aliveSet(now)
	key := strings.Join(alive, ",")
	if key != p.aliveKey {
		p.aliveKey = key
		p.stableSince = now
		return
	}
	if now.Sub(p.stableSince) < p.cfg.StableFor {
		return
	}
	if alive[0] != p.addr {
		return // not the representative
	}
	// Choose the continuation lineage: our own previous ring. StartSeq is
	// the highest sequence known among lineage members.
	lineage := p.prevRing
	startSeq := p.seqHigh
	for _, a := range alive {
		rec, ok := p.joinInfo[a]
		if !ok {
			continue
		}
		if rec.msg.PrevRing == lineage && rec.msg.HighSeq > startSeq {
			startSeq = rec.msg.HighSeq
		}
	}
	p.maxEpoch++
	f := &formMsg{
		Ring:     ringIdentity{Epoch: p.maxEpoch, Rep: p.addr},
		Members:  alive,
		Lineage:  lineage,
		StartSeq: startSeq,
	}
	p.bcastMsg(f)
	p.installRing(f, now)
}

// --- timers ---

func (p *Processor) onTick(now time.Time) {
	switch p.state {
	case stateGather:
		if now.Sub(p.lastJoinSent) >= p.cfg.JoinInterval {
			p.sendJoin(now)
		}
		p.tryFormRing(now)
	case stateOperational:
		// The representative's beacon must fire even while the token is
		// parked: a long-paced ring (idle single member, deep backoff)
		// still has to be discoverable for partition merges.
		if p.ring.Rep == p.addr && now.Sub(p.lastAnnounceAt) >= p.cfg.AnnounceInterval {
			p.lastAnnounceAt = now
			ann := announceMsg{Ring: p.ring}
			p.bcastMsg(&ann)
		}
		if p.fastPath && p.addr != p.leader && p.pending.Len() > 0 &&
			now.Sub(p.lastFwdAt) >= p.cfg.TokenResend {
			// Forward retry, cumulative from the un-acknowledged head so
			// the leader's in-order window can fill any gap a lost
			// forward frame left.
			p.forwardPending(now, 0)
		}
		if p.parkedToken != nil {
			if !now.Before(p.parkedUntil) {
				p.releaseParked(now)
			}
			return
		}
		if now.Sub(p.lastTokenAt) > p.cfg.TokenLossTimeout {
			p.enterGather(now, "token-loss")
			return
		}
		if p.lastSentToken != nil && now.Sub(p.lastSentAt) >= p.cfg.TokenResend && p.tokenResends < 3 {
			p.tokenResends++
			p.lastSentAt = now
			p.sendMsg(p.successor(), p.lastSentToken)
		}
	}
}

// bcastMsg encodes m into a pooled buffer, broadcasts it, and returns the
// buffer to the pool — legal because Transport implementations must not
// retain the payload after Broadcast returns (see Transport).
func (p *Processor) bcastMsg(m wireMsg) {
	e := cdr.AcquireEncoder(cdr.BigEndian)
	m.encodeTo(e)
	buf := e.Bytes()
	p.mPktsOut.Inc()
	p.mBytesOut.Add(uint64(len(buf)))
	_ = p.tr.Broadcast(buf)
	cdr.ReleaseEncoder(e)
}

// sendMsg is bcastMsg for unicast.
func (p *Processor) sendMsg(to string, m wireMsg) {
	e := cdr.AcquireEncoder(cdr.BigEndian)
	m.encodeTo(e)
	buf := e.Bytes()
	p.mPktsOut.Inc()
	p.mBytesOut.Add(uint64(len(buf)))
	_ = p.tr.Send(to, buf)
	cdr.ReleaseEncoder(e)
}
