package eternal_test

import (
	"fmt"
	"testing"
	"time"

	"eternal"
	"eternal/internal/totem"
)

// pacedSystem builds a system with explicit totem pacing knobs — larger
// ticks than fastSystem so pacing windows and wake-up latencies are
// measurable against scheduler noise.
func pacedSystem(t *testing.T, tick time.Duration, fp totem.FastPathMode, audit time.Duration, nodes ...string) *eternal.System {
	t.Helper()
	sys, err := eternal.NewSystem(eternal.SystemConfig{
		Nodes: nodes,
		Totem: totem.Config{
			TokenLossTimeout: 100 * tick,
			JoinInterval:     10 * time.Millisecond,
			StableFor:        20 * time.Millisecond,
			Tick:             tick,
			FastPath:         fp,
		},
		ManagerTick:    10 * time.Millisecond,
		AuditInterval:  audit,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	sys.RegisterFactory("Register", func(oid string) eternal.Replica { return &register{} })
	return sys
}

// TestAuditKeepsIdleRingPaced proves the background-traffic invariant at
// the system level: with the consistency audit running every 50ms on an
// otherwise idle domain, audit epochs keep advancing on every node while
// the token stays paced — the marks ride the paced token instead of
// resetting its idle counter.
func TestAuditKeepsIdleRingPaced(t *testing.T) {
	const auditInterval = 50 * time.Millisecond
	sys := pacedSystem(t, time.Millisecond, totem.FastPathOff, auditInterval, "n1", "n2")
	if err := sys.CreateGroup(eternal.GroupSpec{
		Name: "reg", TypeName: "Register",
		Props: eternal.Properties{Style: eternal.Active, InitialReplicas: 2, MinReplicas: 1},
		Nodes: []string{"n1", "n2"},
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := sys.Client("n1", "driver")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	obj, err := cl.Resolve("reg")
	if err != nil {
		t.Fatal(err)
	}
	setVal(t, obj, "seed")

	// Let the post-write grace expire and pacing engage.
	time.Sleep(100 * time.Millisecond)

	n1 := sys.Node("n1")
	holds := n1.Metrics().FindHistogram("eternal_totem_token_hold_seconds")
	if holds == nil {
		t.Fatal("totem token metrics not registered")
	}
	s1, ok := n1.AuditSummary()
	if !ok {
		t.Fatal("audit disabled on n1")
	}
	visits1 := holds.Count()
	time.Sleep(500 * time.Millisecond)
	visits2 := holds.Count()
	s2, _ := n1.AuditSummary()

	// ~10 audit epochs passed. The audit must have progressed...
	if s2.LastEpoch <= s1.LastEpoch || s2.Observations <= s1.Observations {
		t.Fatalf("audit stalled while idle: %+v -> %+v", s1, s2)
	}
	if s2.Diverged || s2.Divergences+s2.Lags+s2.Stalls > 0 {
		t.Fatalf("audit alarms on an idle ring: %+v", s2)
	}
	// ...and the ring must have stayed paced: a 2-member paced rotation
	// costs >= 2 ticks (2ms), so 500ms fits ~250 visits plus slack for
	// the post-epoch activity bursts. An un-paced ring would log tens of
	// thousands.
	if visits := visits2 - visits1; visits > 3000 {
		t.Fatalf("token visited n1 %d times in 500ms: audit traffic keeps the ring spinning", visits)
	}
	var sawPaced bool
	for _, r := range n1.TokenRotations(0) {
		if r.Paced && r.PaceTicks > 0 {
			sawPaced = true
			break
		}
	}
	if !sawPaced {
		t.Fatal("no paced token visits while idle under audit traffic")
	}
}

// TestFirstInvocationAfterIdleLatency is the regression guard for the
// idle-wakeup cliff: after the ring has gone fully idle (deep pacing at
// a 20ms tick), the next invocation must not wait out the pacing backoff
// — the hurry nudge (classic path) or the leader fast path keeps it
// orders of magnitude below the worst-case parked rotation.
func TestFirstInvocationAfterIdleLatency(t *testing.T) {
	for _, tc := range []struct {
		name string
		fp   totem.FastPathMode
	}{
		{"classic-hurry", totem.FastPathOff},
		{"fast-path", totem.FastPathAuto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const tick = 20 * time.Millisecond
			sys := pacedSystem(t, tick, tc.fp, -1, "n1", "n2")
			if err := sys.CreateGroup(eternal.GroupSpec{
				Name: "reg", TypeName: "Register",
				Props: eternal.Properties{Style: eternal.Active, InitialReplicas: 2, MinReplicas: 1},
				Nodes: []string{"n1", "n2"},
			}); err != nil {
				t.Fatal(err)
			}
			cl, err := sys.Client("n2", "driver")
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			obj, err := cl.Resolve("reg")
			if err != nil {
				t.Fatal(err)
			}
			setVal(t, obj, "warm")
			// Deep idle: several fully paced rotations at up to
			// MaxPaceTicks×tick = 80ms per hop.
			time.Sleep(600 * time.Millisecond)

			start := time.Now()
			setVal(t, obj, "wake")
			elapsed := time.Since(start)
			// A single fully paced 2-member rotation is up to 320ms; an
			// invocation needs request and reply rounds, so an un-nudged
			// stack pays most of a rotation. 150ms proves the wake path
			// short-circuited pacing with a wide scheduler margin.
			if elapsed > 150*time.Millisecond {
				t.Fatalf("first invocation after idle took %v (%s)", elapsed, tc.name)
			}
		})
	}
}

// TestFastPathFallbackKillRecoverAuditClean is the chaos case for the
// leader fast path (forced on for the 4-member ring): a replica
// kill/recover pushes a state transfer through leader-ordered
// sequencing, then crashing the leader node itself forces the fallback
// — the survivors reform under a new leader and keep writing, including
// another full state transfer. At the end, every acknowledged write is
// present in order and the audit record is spotless on every surviving
// node: the speculative leader ordering never produced divergence.
func TestFastPathFallbackKillRecoverAuditClean(t *testing.T) {
	const auditInterval = 100 * time.Millisecond
	sys := pacedSystem(t, time.Millisecond, totem.FastPathOn, auditInterval, "c1", "c2", "c3", "c4")
	if err := sys.CreateGroup(eternal.GroupSpec{
		Name: "reg", TypeName: "Register",
		Props: eternal.Properties{Style: eternal.Active, InitialReplicas: 3, MinReplicas: 2},
		Nodes: []string{"c1", "c2", "c3"},
	}); err != nil {
		t.Fatal(err)
	}
	// The client lives on c4: every write crosses the forward path while
	// c1 (the representative) leads the ring.
	cl, err := sys.Client("c4", "chaos-driver")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	obj, err := cl.Resolve("reg")
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	write := func(i int) {
		v := fmt.Sprintf("w%03d", i)
		e := eternal.NewEncoder(eternal.BigEndian)
		e.WriteString(v)
		if _, err := obj.InvokeTimeout("set", e.Bytes(), 20*time.Second); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked = append(acked, v)
	}
	for i := 0; i < 10; i++ {
		write(i)
	}

	// Replica kill/recover on c2 with writes in between: the recovery
	// state transfer (KAddMember marker, manifest, chunks) is sequenced
	// by the fast-path leader.
	if err := sys.Node("c2").KillReplica("reg", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		write(i)
	}
	if err := sys.Node("c2").RecoverReplica("reg", 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash the leader node mid-stream. The survivors reform under c2,
	// the fast path re-elects, and acknowledged writes survive the
	// transition.
	sys.CrashNode("c1")
	for i := 20; i < 30; i++ {
		write(i)
	}

	// Another replica kill/recover, now under the re-elected leader: the
	// state transfer crosses the new forward path.
	if err := sys.Node("c3").KillReplica("reg", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ {
		write(i)
	}
	if err := sys.Node("c3").RecoverReplica("reg", 20*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 35; i < 40; i++ {
		write(i)
	}

	hs := history(t, obj)
	if len(hs) != len(acked) {
		t.Fatalf("history has %d writes, acked %d: %v", len(hs), len(acked), hs)
	}
	for i := range acked {
		if hs[i] != acked[i] {
			t.Fatalf("history[%d] = %q, want %q", i, hs[i], acked[i])
		}
	}

	// Several audit epochs (and the stall sweep) after the last fault:
	// zero divergence on every surviving node.
	time.Sleep(12 * auditInterval)
	for _, nd := range []string{"c2", "c3", "c4"} {
		s, ok := sys.Node(nd).AuditSummary()
		if !ok {
			t.Fatalf("audit disabled on %s", nd)
		}
		if s.Diverged || s.Divergences+s.Lags+s.Stalls > 0 {
			t.Fatalf("%s raised alarms across fast-path fallback: %+v (alarms %+v)",
				nd, s, sys.Node(nd).AuditAlarms(0, 0))
		}
		if s.Observations == 0 {
			t.Fatalf("%s collected no audits: %+v", nd, s)
		}
	}
}
