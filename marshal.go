package eternal

import (
	"eternal/internal/anyval"
	"eternal/internal/cdr"
)

// This file re-exports the marshaling surface applications need: CDR
// encoding for operation parameters and results, and the CORBA `any`
// carrying application-level state.

// ByteOrder identifies the byte order of a CDR stream.
type ByteOrder = cdr.ByteOrder

// CDR byte orders.
const (
	BigEndian    = cdr.BigEndian
	LittleEndian = cdr.LittleEndian
)

// Encoder appends CDR-encoded values (operation arguments, results).
type Encoder = cdr.Encoder

// Decoder consumes CDR-encoded values.
type Decoder = cdr.Decoder

// NewEncoder returns a CDR encoder with the given byte order.
func NewEncoder(order ByteOrder) *Encoder { return cdr.NewEncoder(order) }

// NewDecoder returns a CDR decoder over buf.
func NewDecoder(buf []byte, order ByteOrder) *Decoder { return cdr.NewDecoder(buf, order) }

// Any is the self-describing CORBA any — the type of application-level
// state (paper §4.1: "the application-level state is defined to be of the
// CORBA type any").
type Any = anyval.Any

// TypeCode describes an Any's type.
type TypeCode = anyval.TypeCode

// Any constructors for common state shapes.
var (
	AnyFromBytes    = anyval.FromBytes
	AnyFromString   = anyval.FromString
	AnyFromLong     = anyval.FromLong
	AnyFromLongLong = anyval.FromLongLong
	AnyFromDouble   = anyval.FromDouble
	AnyFromBoolean  = anyval.FromBoolean
)

// StructOf and SequenceOf build composite TypeCodes for richer state.
var (
	StructOf   = anyval.StructOf
	SequenceOf = anyval.SequenceOf
)
